package eval

import (
	"fmt"
	"strings"
	"time"

	"semagent/internal/core"
	"semagent/internal/corpus"
	"semagent/internal/linkgrammar"
	"semagent/internal/ontology"
	"semagent/internal/qa"
	"semagent/internal/semantic"
	"semagent/internal/sentence"
	"semagent/internal/workload"
)

// newSupervised builds the standard supervisor used across experiments.
func newSupervised() (*core.Supervisor, error) {
	return core.New(core.Config{})
}

// ---------------------------------------------------------------- E1

// E1Result measures parser correctness on generated grammatical
// sentences (paper Figures 1–2: linkage formation).
type E1Result struct {
	Total          int
	Parsed         int // valid linkage with zero nulls
	MetaViolations int // emitted linkages violating any meta-rule
	ByLength       map[int]*E1Bucket
}

// E1Bucket aggregates per sentence length.
type E1Bucket struct {
	Total  int
	Parsed int
}

// ParseRate is the fraction of grammatical sentences fully parsed.
func (r *E1Result) ParseRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Parsed) / float64(r.Total)
}

// RunE1 parses n generated grammatical sentences and validates every
// returned linkage against the four meta-rules.
func RunE1(n int, seed int64) (*E1Result, error) {
	sup, err := newSupervised()
	if err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(seed, sup.Ontology())
	parser := sup.Parser()
	res := &E1Result{ByLength: make(map[int]*E1Bucket)}
	for i := 0; i < n; i++ {
		s := gen.Correct()
		out, err := parser.Parse(s.Text)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", s.Text, err)
		}
		res.Total++
		length := len(out.Tokens)
		b := res.ByLength[length]
		if b == nil {
			b = &E1Bucket{}
			res.ByLength[length] = b
		}
		b.Total++
		if out.Valid() {
			res.Parsed++
			b.Parsed++
		}
		for _, lk := range out.Linkages {
			if lk.Validate() != nil {
				res.MetaViolations++
			}
		}
	}
	return res, nil
}

// ---------------------------------------------------------------- E2

// E2Result measures Learning_Angel syntax-error detection (Figure 4).
type E2Result struct {
	Confusion Confusion
	// SuggestionRate is the fraction of detected errors for which the
	// corpus produced at least one suggestion (after warm-up).
	SuggestionRate float64
	// RepairRate is the fraction of detected errors with a
	// "did you mean" rewrite.
	RepairRate float64
	// ByMutation breaks detection recall down per corruption kind.
	ByMutation map[string]*Confusion
	// MaxNulls echoes the parser budget swept in design decision D1.
	MaxNulls int
}

// RunE2 scores the Learning_Angel on a labelled half-correct,
// half-corrupted workload. maxNulls == 0 selects stock link grammar
// behaviour (the D1 ablation's strict arm).
func RunE2(n int, seed int64, maxNulls int) (*E2Result, error) {
	optNulls := maxNulls
	if optNulls == 0 {
		optNulls = -1 // explicit "no nulls" in parser options
	}
	sup, err := core.New(core.Config{
		ParserOptions: linkgrammar.Options{MaxNulls: optNulls},
	})
	if err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(seed, sup.Ontology())
	res := &E2Result{ByMutation: make(map[string]*Confusion), MaxNulls: maxNulls}

	// Warm the corpus with correct sentences so suggestions can fire.
	for i := 0; i < 50; i++ {
		s := gen.Correct()
		sup.Corpus().Add(corpus.Record{
			Text:    s.Text,
			Tokens:  linkgrammar.Tokenize(s.Text),
			Verdict: corpus.VerdictCorrect,
			Topics:  s.Topics,
		})
	}

	detectedErrors, withSuggestion, withRepair := 0, 0, 0
	for i := 0; i < n; i++ {
		var s workload.Sample
		if i%2 == 0 {
			s = gen.Correct()
		} else {
			s = gen.SyntaxError()
		}
		rep, err := sup.Angel().Check(s.Text)
		if err != nil {
			return nil, fmt.Errorf("check %q: %w", s.Text, err)
		}
		predictedErr := !rep.OK
		actualErr := s.Kind == workload.KindSyntaxError
		res.Confusion.Observe(predictedErr, actualErr)
		if actualErr {
			mc := res.ByMutation[s.Mutation]
			if mc == nil {
				mc = &Confusion{}
				res.ByMutation[s.Mutation] = mc
			}
			mc.Observe(predictedErr, true)
		}
		if predictedErr && actualErr {
			detectedErrors++
			if len(rep.Suggestions) > 0 {
				withSuggestion++
			}
			if rep.Repaired != "" {
				withRepair++
			}
		}
	}
	if detectedErrors > 0 {
		res.SuggestionRate = float64(withSuggestion) / float64(detectedErrors)
		res.RepairRate = float64(withRepair) / float64(detectedErrors)
	}
	return res, nil
}

// ---------------------------------------------------------------- E3

// E3Result measures Semantic Agent accuracy (Figure 5, §4.3),
// including the four polarity×relatedness cells.
type E3Result struct {
	Confusion Confusion
	// Cells indexes accuracy per truth-table cell:
	// "affirm-related", "affirm-unrelated", "negate-related",
	// "negate-unrelated".
	Cells     map[string]*Confusion
	Threshold int
}

// RunE3 scores the ontology-distance Semantic Agent on grammatical
// sentences whose semantic validity is known.
func RunE3(n int, seed int64, threshold int) (*E3Result, error) {
	sup, err := core.New(core.Config{SemanticThreshold: threshold})
	if err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(seed, sup.Ontology())
	res := &E3Result{Cells: make(map[string]*Confusion), Threshold: sup.Semantic().Threshold()}
	for i := 0; i < n; i++ {
		var s workload.Sample
		if i%2 == 0 {
			s = gen.Correct()
		} else {
			s = gen.SemanticError()
		}
		if len(s.Topics) < 2 {
			// Chit-chat with no ontology pair cannot be semantically
			// judged; skip to keep the ground truth meaningful.
			continue
		}
		analysis := sup.Semantic().AnalyzeText(s.Text)
		predicted := analysis.Verdict == semantic.VerdictInterrogative
		actual := s.Kind == workload.KindSemanticError
		res.Confusion.Observe(predicted, actual)

		cell := cellName(s.Negated, actual)
		cc := res.Cells[cell]
		if cc == nil {
			cc = &Confusion{}
			res.Cells[cell] = cc
		}
		cc.Observe(predicted, actual)
	}
	return res, nil
}

func cellName(negated, isError bool) string {
	polarity := "affirm"
	if negated {
		polarity = "negate"
	}
	// For affirmative sentences error <=> unrelated pair; for negated
	// sentences error <=> related pair.
	related := isError == negated
	rel := "unrelated"
	if related {
		rel = "related"
	}
	return polarity + "-" + rel
}

// ---------------------------------------------------------------- E4

// E4Row is the per-template QA outcome (Figure 6, §4.4).
type E4Row struct {
	Template  string
	Asked     int
	Answered  int
	Correct   int // yes/no ground truth matched (does-have, is-a only)
	Checkable int
}

// E4Result aggregates QA measurements.
type E4Result struct {
	Rows []E4Row
	// OutOfOntologyAsked / Answered quantify refusals on unknown terms
	// (they should NOT be answered).
	OutOfOntologyAsked    int
	OutOfOntologyAnswered int
}

// AnswerRate over all in-ontology questions.
func (r *E4Result) AnswerRate() float64 {
	asked, answered := 0, 0
	for _, row := range r.Rows {
		asked += row.Asked
		answered += row.Answered
	}
	if asked == 0 {
		return 0
	}
	return float64(answered) / float64(asked)
}

// RunE4 asks n generated questions and scores answer rate plus yes/no
// correctness.
func RunE4(n int, seed int64, outOfOntologyFrac float64) (*E4Result, error) {
	sup, err := newSupervised()
	if err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(seed, sup.Ontology())
	rows := make(map[string]*E4Row)
	res := &E4Result{}
	for i := 0; i < n; i++ {
		outOfOnto := float64(i%100)/100 < outOfOntologyFrac
		s := gen.Question(outOfOnto)
		ans := sup.QA().Ask(s.Text)
		if !s.InOntology {
			res.OutOfOntologyAsked++
			if ans.Answered {
				res.OutOfOntologyAnswered++
			}
			continue
		}
		row := rows[s.Template]
		if row == nil {
			row = &E4Row{Template: s.Template}
			rows[s.Template] = row
		}
		row.Asked++
		if ans.Answered {
			row.Answered++
		}
		if s.Template == "does-have" || s.Template == "is-a" {
			row.Checkable++
			if ans.Answered {
				gotYes := strings.HasPrefix(ans.Text, "Yes")
				if gotYes == s.WantYes {
					row.Correct++
				}
			}
		}
	}
	for _, tmpl := range []string{"what-is", "does-have", "which-has", "is-a", "relations-of"} {
		if row := rows[tmpl]; row != nil {
			res.Rows = append(res.Rows, *row)
		}
	}
	return res, nil
}

// ---------------------------------------------------------------- E5

// E5Row tracks FAQ growth for one dialogue volume.
type E5Row struct {
	Messages   int
	FAQEntries int
	MinedPairs int
	TopCount   int // frequency of the most popular FAQ entry
}

// RunE5 replays scripted classroom sessions of increasing size and
// reports FAQ accumulation (§4.4 mining).
func RunE5(sizes []int, seed int64) ([]E5Row, error) {
	var out []E5Row
	for _, size := range sizes {
		sup, err := newSupervised()
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(seed, sup.Ontology())
		for _, msg := range gen.Session(4, 4, size) {
			if _, err := sup.Process(msg.Room, msg.User, msg.Sample.Text); err != nil {
				return nil, err
			}
		}
		row := E5Row{
			Messages:   size,
			FAQEntries: sup.FAQ().Len(),
			MinedPairs: sup.Generator().MinedPairs(),
		}
		if top := sup.FAQ().Top(1); len(top) > 0 {
			row.TopCount = top[0].Count
		}
		out = append(out, row)
	}
	return out, nil
}

// ---------------------------------------------------------------- E7

// E7Result compares the two §4.3 methodologies (design decision D3).
type E7Result struct {
	Onto E7Arm
	SLG  E7Arm
}

// E7Arm is one methodology's measurements.
type E7Arm struct {
	Name      string
	Confusion Confusion
	// MicrosPerSentence is the mean analysis cost.
	MicrosPerSentence float64
	// MaintenanceSize is ontology edges vs compiled lexicon rows.
	MaintenanceSize int
}

// RunE7 runs the ablation between Semantic Relation of Knowledge
// Ontology (chosen by the paper) and the Semantic Link Grammar
// baseline (rejected by the paper).
func RunE7(n int, seed int64) (*E7Result, error) {
	onto := ontology.BuildCourseOntology()
	agent := semantic.New(onto, 0)
	slg := semantic.NewSLGChecker(onto)
	gen := workload.NewGenerator(seed, onto)

	samples := make([]workload.Sample, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			samples = append(samples, gen.Correct())
		} else {
			samples = append(samples, gen.SemanticError())
		}
	}

	run := func(name string, checker semantic.Checker, maintenance int) E7Arm {
		arm := E7Arm{Name: name, MaintenanceSize: maintenance}
		start := time.Now()
		judged := 0
		for _, s := range samples {
			if len(s.Topics) < 2 {
				continue
			}
			a := checker.AnalyzeText(s.Text)
			predicted := a.Verdict == semantic.VerdictInterrogative
			actual := s.Kind == workload.KindSemanticError
			arm.Confusion.Observe(predicted, actual)
			judged++
		}
		if judged > 0 {
			arm.MicrosPerSentence = float64(time.Since(start).Microseconds()) / float64(judged)
		}
		return arm
	}

	// Maintenance cost: rows an author must keep correct to encode the
	// feature-concept facts. The ontology states each fact once as an
	// edge; the lexicalized baseline additionally enumerates every
	// subtype (no graph to traverse), so it is strictly larger — the
	// paper's stated reason for rejecting it.
	edges := 0
	for _, r := range onto.Relations() {
		if r.Kind == ontology.RelHasOperation || r.Kind == ontology.RelHasProperty {
			edges++
		}
	}
	res := &E7Result{
		Onto: run("ontology-distance", agent, edges),
		SLG:  run("semantic-link-grammar", slg, slg.DictionaryEntries()),
	}
	return res, nil
}

// ---------------------------------------------------------------- E8

// E8Row reports suggestion quality at one corpus warm-up size.
type E8Row struct {
	CorpusSize int
	// HitRate is the fraction of broken sentences that received at
	// least one suggestion.
	HitRate float64
	// TopicalRate is the fraction whose top suggestion shares a topic
	// with the broken sentence.
	TopicalRate float64
}

// RunE8 measures how corpus growth improves Learning_Angel suggestions.
func RunE8(warmups []int, probes int, seed int64) ([]E8Row, error) {
	var out []E8Row
	for _, warm := range warmups {
		sup, err := newSupervised()
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(seed, sup.Ontology())
		for i := 0; i < warm; i++ {
			s := gen.Correct()
			sup.Corpus().Add(corpus.Record{
				Text:    s.Text,
				Tokens:  linkgrammar.Tokenize(s.Text),
				Verdict: corpus.VerdictCorrect,
				Topics:  s.Topics,
			})
		}
		hits, topical := 0, 0
		for i := 0; i < probes; i++ {
			s := gen.SyntaxError()
			rep, err := sup.Angel().Check(s.Text)
			if err != nil {
				return nil, err
			}
			if rep.OK {
				continue // undetected corruption: no suggestion expected
			}
			if len(rep.Suggestions) > 0 {
				hits++
				if sharesTopic(rep.Suggestions[0].Record.Topics, s.Topics) {
					topical++
				}
			}
		}
		row := E8Row{CorpusSize: warm}
		if probes > 0 {
			row.HitRate = float64(hits) / float64(probes)
			row.TopicalRate = float64(topical) / float64(probes)
		}
		out = append(out, row)
	}
	return out, nil
}

func sharesTopic(a, b []string) bool {
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	for _, t := range b {
		if set[t] {
			return true
		}
	}
	return false
}

// Helpers shared with the harness command.

// ClassifyKind maps a corpus verdict back to the workload kind space
// (used in tests).
func ClassifyKind(v corpus.Verdict) workload.Kind {
	switch v {
	case corpus.VerdictSyntaxError:
		return workload.KindSyntaxError
	case corpus.VerdictSemanticError:
		return workload.KindSemanticError
	case corpus.VerdictQuestion:
		return workload.KindQuestion
	default:
		return workload.KindCorrect
	}
}

// PatternOf re-exports sentence classification for the harness.
func PatternOf(text string) sentence.Pattern {
	return sentence.ClassifyText(text).Pattern
}

// FAQTop re-exports FAQ ranking for the harness.
func FAQTop(f *qa.FAQ, n int) []qa.Entry { return f.Top(n) }
