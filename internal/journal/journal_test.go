package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"semagent/internal/clock"
	"semagent/internal/corpus"
	"semagent/internal/ontology"
	"semagent/internal/storage"
)

// noAutoOpts disables every background trigger so tests control flush
// and checkpoint timing explicitly.
var noAutoOpts = Options{
	GroupWindow:        time.Hour,
	CheckpointBytes:    -1,
	CheckpointInterval: -1,
}

// openFresh opens a journal over freshly loaded stores.
func openFresh(t *testing.T, dir string, opts Options) (Stores, *Manager) {
	t.Helper()
	stores, err := LoadStores(dir)
	if err != nil {
		t.Fatalf("LoadStores: %v", err)
	}
	mgr, err := Open(dir, stores, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return stores, mgr
}

// mutate drives one representative mutation into each of the four
// stores and returns the number of journal records it should produce.
func mutate(t *testing.T, s Stores, suffix string) int {
	t.Helper()
	s.Corpus.Add(corpus.Record{
		Text: "the stack has push " + suffix, Tokens: []string{"the", "stack", "has", "push", suffix},
		Verdict: corpus.VerdictCorrect, User: "alice", Room: "r1",
	})
	s.Profiles.RecordMessage("alice", []string{"stack"})
	s.FAQ.Record("What is a stack "+suffix+"?", "A stack is a LIFO structure ("+suffix+").", 0)
	if _, err := s.Ontology.AddItem("custom item "+suffix, ontology.KindConcept); err != nil {
		t.Fatalf("AddItem: %v", err)
	}
	return 4
}

func TestRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	s1, m1 := openFresh(t, dir, noAutoOpts)
	want := mutate(t, s1, "one")
	want += mutate(t, s1, "two")
	if err := m1.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulated SIGKILL: no Close, no checkpoint — memory is gone, only
	// the fsync'd journal survives (Abandon also drops the directory
	// lock, as a real process death would).
	m1.Abandon()

	s2, m2 := openFresh(t, dir, noAutoOpts)
	defer m2.Close()
	rs := m2.Stats().Replay
	if rs.Applied != want {
		t.Fatalf("replay applied %d records, want %d", rs.Applied, want)
	}
	if got := s2.Corpus.Len(); got != 2 {
		t.Errorf("corpus.Len = %d, want 2", got)
	}
	p, ok := s2.Profiles.Get("alice")
	if !ok || p.Messages != 2 {
		t.Errorf("profile alice = %+v, ok=%v; want 2 messages", p, ok)
	}
	if e, ok := s2.FAQ.Lookup("What is a stack one?"); !ok || !strings.Contains(e.Answer, "one") {
		t.Errorf("faq lookup = %+v, ok=%v", e, ok)
	}
	if _, ok := s2.Ontology.Lookup("custom item two"); !ok {
		t.Error("ontology item 'custom item two' not recovered")
	}
	// Recording times must survive the replay (event-carried, not
	// re-clocked).
	if p.FirstSeen.IsZero() || p.FirstSeen.After(time.Now()) {
		t.Errorf("profile FirstSeen not preserved: %v", p.FirstSeen)
	}
}

func TestTornTailRecoversToLastCompleteRecord(t *testing.T) {
	dir := t.TempDir()
	s1, m1 := openFresh(t, dir, noAutoOpts)
	want := mutate(t, s1, "one")
	if err := m1.Sync(); err != nil {
		t.Fatal(err)
	}
	m1.Abandon()

	// A crash mid-append leaves a torn record at the tail.
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"lsn":999,"type":"corpus.add","crc":12,"data":{"id`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	s2, m2 := openFresh(t, dir, noAutoOpts)
	rs := m2.Stats().Replay
	if rs.Applied != want {
		t.Fatalf("replay applied %d, want %d", rs.Applied, want)
	}
	if rs.TornTail == 0 {
		t.Error("torn tail not detected")
	}
	if got := s2.Corpus.Len(); got != 1 {
		t.Errorf("corpus.Len = %d, want 1", got)
	}

	// The tail was truncated: appending must resume cleanly.
	mutate(t, s2, "after")
	if err := m2.Sync(); err != nil {
		t.Fatal(err)
	}
	m2.Abandon()

	s3, m3 := openFresh(t, dir, noAutoOpts)
	defer m3.Close()
	if got := s3.Corpus.Len(); got != 2 {
		t.Errorf("corpus.Len after second recovery = %d, want 2", got)
	}
	if m3.Stats().Replay.TornTail != 0 {
		t.Error("second recovery still sees a torn tail")
	}
}

func TestCorruptRecordStopsReplayAtPrefix(t *testing.T) {
	dir := t.TempDir()
	s1, m1 := openFresh(t, dir, noAutoOpts)
	mutate(t, s1, "one")
	mutate(t, s1, "two")
	if err := m1.Sync(); err != nil {
		t.Fatal(err)
	}
	m1.Abandon()

	// Flip a byte in the middle of the segment: everything from the
	// corrupt record on is untrusted.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(data) / 2
	data[mid] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, m2 := openFresh(t, dir, noAutoOpts)
	defer m2.Close()
	rs := m2.Stats().Replay
	if rs.Applied >= 8 {
		t.Errorf("replay applied %d records through a corrupt byte", rs.Applied)
	}
	if got := s2.Corpus.Len(); got > 2 {
		t.Errorf("corpus.Len = %d after corruption, want <= 2", got)
	}
}

func TestCheckpointTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	s1, m1 := openFresh(t, dir, noAutoOpts)
	mutate(t, s1, "one")
	if err := m1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	m1.Abandon()
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 2 {
		t.Fatalf("segments after checkpoint = %v, want [2]", seqs)
	}

	// Recovery loads the checkpoint; nothing left to replay.
	s2, m2 := openFresh(t, dir, noAutoOpts)
	defer m2.Close()
	rs := m2.Stats().Replay
	if rs.Applied != 0 {
		t.Errorf("replay applied %d records after checkpoint, want 0", rs.Applied)
	}
	if got := s2.Corpus.Len(); got != 1 {
		t.Errorf("corpus.Len = %d, want 1", got)
	}
	if got := s2.FAQ.Len(); got != 1 {
		t.Errorf("faq.Len = %d, want 1", got)
	}
}

func TestKillBetweenCheckpointAndTruncateNeverDoubleApplies(t *testing.T) {
	dir := t.TempDir()
	s1, m1 := openFresh(t, dir, noAutoOpts)
	mutate(t, s1, "one")
	if err := m1.Sync(); err != nil {
		t.Fatal(err)
	}
	m1.Abandon()
	// Simulate a checkpoint whose segment deletion never happened (the
	// process died in between): the snapshot files land on disk with
	// their embedded LSNs, the journal still holds every record.
	err := storage.Save(dir, storage.Snapshot{
		Ontology: s1.Ontology, Corpus: s1.Corpus, Profiles: s1.Profiles, FAQ: s1.FAQ,
	})
	if err != nil {
		t.Fatal(err)
	}

	s2, m2 := openFresh(t, dir, noAutoOpts)
	defer m2.Close()
	rs := m2.Stats().Replay
	if rs.Applied != 0 {
		t.Errorf("replay applied %d checkpointed records, want 0 (all skipped)", rs.Applied)
	}
	if rs.Skipped != 4 {
		t.Errorf("replay skipped %d records, want 4", rs.Skipped)
	}
	// No double-apply: counters are exactly one mutation's worth.
	if got := s2.Corpus.Len(); got != 1 {
		t.Errorf("corpus.Len = %d, want 1", got)
	}
	if p, _ := s2.Profiles.Get("alice"); p.Messages != 1 {
		t.Errorf("alice.Messages = %d, want 1 (double-applied?)", p.Messages)
	}
	if e, _ := s2.FAQ.Lookup("What is a stack one?"); e.Count != 1 {
		t.Errorf("faq count = %d, want 1 (double-applied?)", e.Count)
	}
}

func TestMutationsAfterCheckpointReplayOverSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1, m1 := openFresh(t, dir, noAutoOpts)
	mutate(t, s1, "one")
	if err := m1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mutate(t, s1, "two")
	// Re-answer an already-checkpointed FAQ question: the replayed
	// correction must overwrite the checkpointed answer, not duplicate
	// the entry.
	s1.FAQ.Record("What is a stack one?", "A corrected answer.", 0)
	if err := m1.Sync(); err != nil {
		t.Fatal(err)
	}
	m1.Abandon()

	s2, m2 := openFresh(t, dir, noAutoOpts)
	defer m2.Close()
	rs := m2.Stats().Replay
	if rs.Applied != 5 {
		t.Errorf("replay applied %d, want 5 (post-checkpoint only)", rs.Applied)
	}
	if got := s2.Corpus.Len(); got != 2 {
		t.Errorf("corpus.Len = %d, want 2", got)
	}
	if p, _ := s2.Profiles.Get("alice"); p.Messages != 2 {
		t.Errorf("alice.Messages = %d, want 2", p.Messages)
	}
	e, ok := s2.FAQ.Lookup("What is a stack one?")
	if !ok || e.Answer != "A corrected answer." {
		t.Errorf("faq answer = %q, want the replayed correction", e.Answer)
	}
	if e.Count != 2 {
		t.Errorf("faq count = %d, want 2", e.Count)
	}
}

func TestGroupCommitFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	vc := clock.NewVirtual(time.Date(2026, 3, 2, 9, 0, 0, 0, time.UTC))
	opts := noAutoOpts
	opts.GroupWindow = 20 * time.Millisecond
	opts.Clock = vc
	s1, m1 := openFresh(t, dir, opts)
	mutate(t, s1, "one")
	// Nothing may hit the disk before the group window elapses — and on
	// the virtual clock it only elapses when we say so.
	if got := m1.Stats().Fsyncs; got != 0 {
		t.Fatalf("fsyncs = %d before the group window", got)
	}
	vc.Advance(opts.GroupWindow)
	// The tick is delivered synchronously, but the flusher goroutine
	// consumes it asynchronously: poll the condition, not the clock.
	if !clock.Until(2*time.Second, func() bool { return m1.Stats().Fsyncs > 0 }) {
		t.Fatal("group commit never fsynced after the window elapsed")
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncEveryRecordFsyncsInline(t *testing.T) {
	dir := t.TempDir()
	opts := noAutoOpts
	opts.SyncEveryRecord = true
	s1, m1 := openFresh(t, dir, opts)
	defer m1.Close()
	n := mutate(t, s1, "one")
	if got := m1.Stats().Fsyncs; got < uint64(n) {
		t.Errorf("fsyncs = %d, want >= %d (one per record)", got, n)
	}
}

func TestCloseSealsWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s1, m1 := openFresh(t, dir, noAutoOpts)
	mutate(t, s1, "one")
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	// Mutations after Close are not journaled (hooks detached).
	s1.Corpus.Add(corpus.Record{Text: "unjournaled", Tokens: []string{"unjournaled"}})

	s2, m2 := openFresh(t, dir, noAutoOpts)
	defer m2.Close()
	if m2.Stats().Replay.Applied != 0 {
		t.Error("Close did not checkpoint (journal not empty)")
	}
	if got := s2.Corpus.Len(); got != 1 {
		t.Errorf("corpus.Len = %d, want 1", got)
	}
}

func TestOntologyAuthoringSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	s1, m1 := openFresh(t, dir, noAutoOpts)
	if _, err := s1.Ontology.AddItem("red-black tree", ontology.KindConcept); err != nil {
		t.Fatal(err)
	}
	if err := s1.Ontology.AddAlias("red-black tree", "rb tree"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Ontology.SetDescription("red-black tree", "a self-balancing binary search tree"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Ontology.Relate("red-black tree", "tree", ontology.RelIsA); err != nil {
		t.Fatal(err)
	}
	if err := m1.Sync(); err != nil {
		t.Fatal(err)
	}
	m1.Abandon()

	s2, m2 := openFresh(t, dir, noAutoOpts)
	defer m2.Close()
	it, ok := s2.Ontology.Lookup("rb tree")
	if !ok {
		t.Fatal("taught alias 'rb tree' not recovered")
	}
	if it.Definition.Description == "" {
		t.Error("description not recovered")
	}
	if !s2.Ontology.IsA("red-black tree", "tree") {
		t.Error("is-a relation not recovered")
	}
}

func TestSingleWriterLock(t *testing.T) {
	dir := t.TempDir()
	_, m1 := openFresh(t, dir, noAutoOpts)
	// A second journal over the same directory must be refused: two
	// appenders would interleave LSNs and checkpoint over each other.
	stores, err := LoadStores(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, stores, noAutoOpts); err == nil {
		t.Fatal("second Open on a journaled directory succeeded")
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	// Released on close: a new writer may take over.
	_, m2 := openFresh(t, dir, noAutoOpts)
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}
