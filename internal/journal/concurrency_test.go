package journal

import (
	"fmt"
	"sync"
	"testing"

	"semagent/internal/corpus"
)

// TestConcurrentMutationsRacingCheckpoints hammers the four stores from
// parallel writers while checkpoints run, then crashes (no Close) and
// recovers. The recovered state must account for every mutation exactly
// once — the checkpoint cut may land anywhere in the stream, but a
// record is either inside the snapshot (and skipped on replay) or
// outside it (and replayed), never both, never neither.
func TestConcurrentMutationsRacingCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s1, m1 := openFresh(t, dir, noAutoOpts)

	const writers = 4
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", w)
			for i := 0; i < perWriter; i++ {
				s1.Corpus.Add(corpus.Record{
					Text:    fmt.Sprintf("w%d message %d about the stack", w, i),
					Tokens:  []string{"stack", fmt.Sprintf("w%d", w), fmt.Sprintf("m%d", i)},
					Verdict: corpus.VerdictCorrect,
					User:    user,
				})
				s1.Profiles.RecordMessage(user, []string{"stack"})
				s1.FAQ.Record(
					fmt.Sprintf("What is question %d of writer %d?", i, w),
					"An answer.", 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if err := m1.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := m1.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close (Abandon drops the flock as process death would).
	m1.Abandon()

	s2, m2 := openFresh(t, dir, noAutoOpts)
	defer m2.Close()
	if got, want := s2.Corpus.Len(), writers*perWriter; got != want {
		t.Errorf("corpus.Len = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		p, ok := s2.Profiles.Get(fmt.Sprintf("user-%d", w))
		if !ok || p.Messages != perWriter {
			t.Errorf("user-%d messages = %d (ok=%v), want %d", w, p.Messages, ok, perWriter)
		}
	}
	if got, want := s2.FAQ.Len(), writers*perWriter; got != want {
		t.Errorf("faq.Len = %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			q := fmt.Sprintf("What is question %d of writer %d?", i, w)
			if e, ok := s2.FAQ.Lookup(q); !ok || e.Count != 1 {
				t.Fatalf("faq %q: count = %d (ok=%v), want exactly 1", q, e.Count, ok)
			}
		}
	}
}
