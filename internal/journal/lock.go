package journal

import (
	"fmt"
	"os"
	"syscall"
)

// lockFileName guards a journaled data directory against concurrent
// writers (e.g. ontologyctl run against a live chatserver's directory).
const lockFileName = "journal.lock"

// acquireLock takes an exclusive, non-blocking flock on the lock file.
// flock is tied to the open file description: the kernel releases it
// when the process exits, however it exits, so a crash never leaves a
// stale lock. The caller keeps the file open for the journal's
// lifetime and closes it to release.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: data directory is journaled by another process (flock %s: %w)", path, err)
	}
	return f, nil
}
