package journal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"semagent/internal/clock"
	"semagent/internal/metrics"
	"semagent/internal/storage"
)

// journalMetrics are the write-ahead log's hot-path instruments (nil
// when the journal runs unobserved).
type journalMetrics struct {
	records, fsyncs    *metrics.Counter
	appendDur, syncDur *metrics.Histogram
}

func newJournalMetrics(r *metrics.Registry) *journalMetrics {
	if r == nil {
		return nil
	}
	return &journalMetrics{
		records:   r.Counter("semagent_journal_records_total", "mutations appended to the WAL"),
		fsyncs:    r.Counter("semagent_journal_fsyncs_total", "WAL fsync calls (group commits + per-record syncs)"),
		appendDur: r.DurationHistogram("semagent_journal_append_seconds", "WAL append latency (buffered write, plus fsync in sync-every mode)"),
		syncDur:   r.DurationHistogram("semagent_journal_fsync_seconds", "WAL flush+fsync latency"),
	}
}

// segment file naming: journal.<8-digit-seq>.wal sorts lexically in
// sequence order.
const (
	segmentPrefix = "journal."
	segmentSuffix = ".wal"
)

func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix)
}

// parseSegmentSeq extracts the sequence number from a segment filename.
func parseSegmentSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	mid := name[len(segmentPrefix) : len(name)-len(segmentSuffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the journal segments in dir in sequence order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// appender owns the active journal segment. Append either fsyncs every
// record (SyncEveryRecord) or relies on the group-commit flusher: a
// background tick flushes the buffer and fsyncs once for every batch of
// appends in the window, so the hot path pays a buffered write, not a
// disk flush, and durability lags by at most one window.
type appender struct {
	mu        sync.Mutex
	dir       string
	f         *os.File
	bw        *bufio.Writer
	seq       uint64 // active segment sequence
	lsn       uint64 // last assigned LSN
	synced    uint64 // highest LSN covered by a successful fsync
	dirty     bool   // unflushed appends
	size      int64  // bytes appended since last checkpoint
	syncEvery bool
	err       error // first append error; journal is degraded after
	met       *journalMetrics
	clk       clock.Clock // latency timestamps; virtual under the simulator
	// onSync, when set, runs after every successful fsync with the new
	// synced watermark, still under mu. The cluster's replication
	// shipper hangs here: replication lag is exactly durability lag, so
	// "nothing a client saw fsync'd is lost" holds by construction.
	onSync func(synced uint64)

	// counters for Stats
	records uint64
	fsyncs  uint64
}

// openAppender opens (or creates) the active segment for appending.
// startLSN seeds the sequence counter from recovery.
func openAppender(dir string, seq, startLSN uint64, syncEvery bool, met *journalMetrics, clk clock.Clock) (*appender, error) {
	create := seq == 0
	if create {
		seq = 1
	}
	path := filepath.Join(dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open segment: %w", err)
	}
	if create {
		if err := storage.SyncDir(dir); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("journal: sync dir: %w", err)
		}
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return &appender{
		dir: dir,
		f:   f,
		bw:  bufio.NewWriterSize(f, 64*1024),
		seq: seq,
		lsn: startLSN,
		// Everything recovery handed us is already on disk: the synced
		// watermark starts where the replayed log ends.
		synced:    startLSN,
		size:      st.Size(),
		syncEvery: syncEvery,
		met:       met,
		clk:       clock.Or(clk),
	}, nil
}

// Append journals one mutation and returns its LSN. In sync-every mode
// the record is fsync'd before returning; otherwise it is buffered for
// the next group commit. Errors degrade the journal (recorded, logged
// by the manager) but still assign an LSN: the mutation is in the
// stores regardless, and the LSN contract is about state coverage, not
// durability.
func (a *appender) Append(typ string, payload interface{}) (uint64, error) {
	if a.met != nil {
		// Duration is observed on every attempt; the records counter
		// only on success (see below) — a degraded journal must not
		// look like it is still appending.
		start := a.clk.Now()
		defer func() { a.met.appendDur.ObserveDuration(a.clk.Since(start)) }()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lsn++
	lsn := a.lsn
	line, err := encodeRecord(lsn, typ, payload)
	if err != nil {
		a.fail(err)
		return lsn, err
	}
	if _, err := a.bw.Write(line); err != nil {
		a.fail(err)
		return lsn, err
	}
	a.records++
	if a.met != nil {
		a.met.records.Inc()
	}
	a.size += int64(len(line))
	a.dirty = true
	if a.syncEvery {
		if err := a.flushLocked(); err != nil {
			return lsn, err
		}
	}
	return lsn, nil
}

func (a *appender) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// flushLocked drains the buffer to the OS and fsyncs. On success every
// record appended so far is durable, so the synced watermark advances to
// the last assigned LSN.
func (a *appender) flushLocked() error {
	if !a.dirty {
		return nil
	}
	var start time.Time
	if a.met != nil {
		start = a.clk.Now()
	}
	if err := a.bw.Flush(); err != nil {
		a.fail(err)
		return err
	}
	if err := a.f.Sync(); err != nil {
		a.fail(err)
		return err
	}
	a.fsyncs++
	a.synced = a.lsn
	if a.met != nil {
		a.met.syncDur.ObserveDuration(a.clk.Since(start))
		a.met.fsyncs.Inc()
	}
	a.dirty = false
	if a.onSync != nil {
		a.onSync(a.synced)
	}
	return nil
}

// Sync forces a group commit now (the background flusher's tick, and
// the shutdown path).
func (a *appender) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushLocked()
}

// Rotate seals the active segment (flush + fsync) and starts a fresh
// one. It returns the sealed segment's sequence number. Records
// appended after Rotate land in the new segment.
func (a *appender) Rotate() (sealed uint64, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.flushLocked(); err != nil {
		return 0, err
	}
	if err := a.f.Close(); err != nil {
		return 0, err
	}
	sealed = a.seq
	a.seq++
	path := filepath.Join(a.dir, segmentName(a.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		a.fail(err)
		return 0, fmt.Errorf("journal: rotate: %w", err)
	}
	if err := storage.SyncDir(a.dir); err != nil {
		_ = f.Close()
		a.fail(err)
		return 0, fmt.Errorf("journal: rotate sync dir: %w", err)
	}
	a.f = f
	a.bw = bufio.NewWriterSize(f, 64*1024)
	a.size = 0
	a.dirty = false
	return sealed, nil
}

// BytesSinceCheckpoint reports bytes appended to the active segment.
func (a *appender) BytesSinceCheckpoint() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.size
}

// LastLSN returns the last assigned sequence number.
func (a *appender) LastLSN() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lsn
}

// Err returns the first append/flush error, if any (degraded journal).
func (a *appender) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Close flushes, fsyncs and closes the active segment.
func (a *appender) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	flushErr := a.flushLocked()
	closeErr := a.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// groupWindowDefault is the group-commit interval: appends buffered in
// this window share one fsync.
const groupWindowDefault = 20 * time.Millisecond
