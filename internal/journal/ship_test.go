package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeSegment hand-crafts a journal segment from encoded records —
// the tail reader is exercised against raw files so segment sealing,
// torn tails and LSN bounds are all under the test's control.
func writeSegment(t *testing.T, dir string, seq uint64, lsns []uint64, tail string) {
	t.Helper()
	var buf []byte
	for _, lsn := range lsns {
		line, err := encodeRecord(lsn, "corpus.add", map[string]uint64{"n": lsn})
		if err != nil {
			t.Fatalf("encodeRecord: %v", err)
		}
		buf = append(buf, line...)
	}
	buf = append(buf, tail...)
	if err := os.WriteFile(filepath.Join(dir, segmentName(seq)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func lsnsOf(recs []ShippedRecord) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.LSN
	}
	return out
}

func wantLSNs(t *testing.T, recs []ShippedRecord, want ...uint64) {
	t.Helper()
	got := lsnsOf(recs)
	if len(got) != len(want) {
		t.Fatalf("shipped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shipped %v, want %v", got, want)
		}
	}
}

func TestTailReaderAdvancesAcrossSealedSegments(t *testing.T) {
	dir := t.TempDir()
	writeSegment(t, dir, 1, []uint64{1, 2}, "")
	writeSegment(t, dir, 2, []uint64{3}, "")

	tr := NewTailReader(dir)
	recs, err := tr.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, recs, 1, 2, 3)
	// Cursor parked on the active (last) segment, not past it.
	if tr.Pos().Segment != 2 {
		t.Fatalf("cursor on segment %d, want 2", tr.Pos().Segment)
	}
	// Nothing new: no records, no error.
	recs, err = tr.Next(0)
	if err != nil || len(recs) != 0 {
		t.Fatalf("idle Next = %v, %v; want empty", lsnsOf(recs), err)
	}
	// New appends to the active segment are picked up incrementally.
	f, err := os.OpenFile(filepath.Join(dir, segmentName(2)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	line, err := encodeRecord(4, "corpus.add", map[string]uint64{"n": 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(line); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	recs, err = tr.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, recs, 4)
}

func TestTailReaderStopsAtTornLineAndResumes(t *testing.T) {
	dir := t.TempDir()
	writeSegment(t, dir, 1, []uint64{1, 2}, `{"lsn":3,"type":"corpus.add","crc":9,"da`)

	tr := NewTailReader(dir)
	recs, err := tr.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, recs, 1, 2)
	tornAt := tr.Pos()

	// The torn bytes were simply not flushed yet: complete the record
	// in place and the reader resumes from the same offset.
	full, err := encodeRecord(3, "corpus.add", map[string]uint64{"n": 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data[:tornAt.Offset], full...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = tr.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, recs, 3)
}

func TestTailReaderHonorsLSNBound(t *testing.T) {
	dir := t.TempDir()
	writeSegment(t, dir, 1, []uint64{1, 2, 3, 4}, "")

	tr := NewTailReader(dir)
	recs, err := tr.Next(2)
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, recs, 1, 2)
	// Raising the bound releases the rest — the shipper only ever ships
	// up to the fsync watermark, then catches up on the next sync.
	recs, err = tr.Next(4)
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, recs, 3, 4)
	if tr.LastLSN() != 4 {
		t.Fatalf("LastLSN = %d, want 4", tr.LastLSN())
	}
}

func TestSinkIdempotentReship(t *testing.T) {
	dir := t.TempDir()
	src := t.TempDir()
	writeSegment(t, src, 1, []uint64{1, 2, 3}, "")
	recs, err := NewTailReader(src).Next(0)
	if err != nil {
		t.Fatal(err)
	}

	s, err := OpenSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(1, recs); err != nil {
		t.Fatal(err)
	}
	// The same batch again (a shipper retry) must be a no-op.
	if err := s.Apply(1, recs); err != nil {
		t.Fatal(err)
	}
	if s.Records() != 3 || s.LastLSN() != 3 {
		t.Fatalf("records %d lastLSN %d after re-ship, want 3/3", s.Records(), s.LastLSN())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A standby restart rescans its segments: the resumed sink still
	// dedupes the old batch and accepts only genuinely new LSNs.
	s2, err := OpenSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.LastLSN() != 3 {
		t.Fatalf("reopened sink lastLSN = %d, want 3", s2.LastLSN())
	}
	writeSegment(t, src, 2, []uint64{4}, "")
	more, err := NewTailReader(src).Next(0) // fresh reader re-ships everything
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Apply(1, more); err != nil {
		t.Fatal(err)
	}
	if s2.LastLSN() != 4 || s2.Records() != 1 {
		t.Fatalf("resumed sink lastLSN %d records %d, want 4/1", s2.LastLSN(), s2.Records())
	}
}

func TestSinkFencesStaleEpoch(t *testing.T) {
	src := t.TempDir()
	writeSegment(t, src, 1, []uint64{1, 2}, "")
	recs, err := NewTailReader(src).Next(0)
	if err != nil {
		t.Fatal(err)
	}

	s, err := OpenSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Apply(1, recs[:1]); err != nil {
		t.Fatal(err)
	}
	s.Fence(2)
	// The deposed owner's last group commit arrives after the fence.
	if err := s.Apply(1, recs[1:]); !errors.Is(err, ErrSinkFenced) {
		t.Fatalf("stale-epoch apply returned %v, want ErrSinkFenced", err)
	}
	if s.LastLSN() != 1 {
		t.Fatalf("fenced batch leaked: lastLSN = %d", s.LastLSN())
	}
	// Fencing never moves backwards.
	s.Fence(1)
	if err := s.Apply(1, recs[1:]); !errors.Is(err, ErrSinkFenced) {
		t.Fatalf("fence moved backwards: apply returned %v", err)
	}
	// The new owner at the fenced epoch proceeds.
	if err := s.Apply(2, recs[1:]); err != nil {
		t.Fatal(err)
	}
	if s.LastLSN() != 2 {
		t.Fatalf("lastLSN = %d, want 2", s.LastLSN())
	}
}

// TestShipThenPromote is the replication path end-to-end: a live
// journal ships every fsync'd record through OnSync into a sink, and
// promotion — ordinary LoadStores + Open on the sink's directory —
// recovers every mutation the primary ever made durable.
func TestShipThenPromote(t *testing.T) {
	primary := t.TempDir()
	standby := t.TempDir()
	sink, err := OpenSink(standby)
	if err != nil {
		t.Fatal(err)
	}
	tail := NewTailReader(primary)

	opts := noAutoOpts
	opts.SyncEveryRecord = true
	opts.OnSync = func(synced uint64) {
		recs, err := tail.Next(synced)
		if err != nil {
			t.Errorf("tail: %v", err)
			return
		}
		if err := sink.Apply(1, recs); err != nil {
			t.Errorf("sink: %v", err)
		}
	}
	s1, m1 := openFresh(t, primary, opts)
	want := mutate(t, s1, "one")
	want += mutate(t, s1, "two")
	synced := m1.Stats().SyncedLSN
	m1.Abandon() // SIGKILL the owner; only the shipped bytes matter now

	if sink.LastLSN() < synced {
		t.Fatalf("standby watermark %d below the dead owner's synced %d", sink.LastLSN(), synced)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	s2, m2 := openFresh(t, standby, noAutoOpts)
	defer m2.Close()
	rs := m2.Stats().Replay
	if rs.Applied != want {
		t.Fatalf("promotion replayed %d records, want %d", rs.Applied, want)
	}
	if got := s2.Corpus.Len(); got != 2 {
		t.Errorf("promoted corpus.Len = %d, want 2", got)
	}
	if p, ok := s2.Profiles.Get("alice"); !ok || p.Messages != 2 {
		t.Errorf("promoted profile alice = %+v, ok=%v; want 2 messages", p, ok)
	}
}

// TestTailMarkResetReplaysAfterFailure: a ship attempt whose downstream
// apply fails must be re-readable. Rewinding only the position is not
// enough — Next refuses LSNs at or below its watermark — so Mark/Reset
// capture both, and a reset re-read returns the identical records.
func TestTailMarkResetReplaysAfterFailure(t *testing.T) {
	dir := t.TempDir()
	writeSegment(t, dir, 1, []uint64{1, 2, 3}, "")

	tr := NewTailReader(dir)
	if recs, err := tr.Next(1); err != nil {
		t.Fatal(err)
	} else {
		wantLSNs(t, recs, 1)
	}
	mark := tr.Mark()
	first, err := tr.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, first, 2, 3)

	// The sink rejected the batch: rewind and re-read.
	tr.Reset(mark)
	second, err := tr.Next(0)
	if err != nil {
		t.Fatal(err)
	}
	wantLSNs(t, second, 2, 3)
	for i := range first {
		if string(first[i].Raw) != string(second[i].Raw) {
			t.Fatalf("re-read record %d diverges from the original read", i)
		}
	}

	// Without the reset the records would have been lost for good.
	if recs, err := tr.Next(0); err != nil || len(recs) != 0 {
		t.Fatalf("cursor did not advance past the re-read: %v, %v", recs, err)
	}
}

// TestSinkInjectFaultSurfacesAndHeals: an injected sink fault fails
// Apply before anything is written, surfaces the injected error
// verbatim, and clearing it makes the same batch apply cleanly.
func TestSinkInjectFaultSurfacesAndHeals(t *testing.T) {
	src := t.TempDir()
	writeSegment(t, src, 1, []uint64{1, 2}, "")
	recs, err := NewTailReader(src).Next(0)
	if err != nil {
		t.Fatal(err)
	}

	s, err := OpenSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wedged := errors.New("standby disk wedged")
	s.InjectFault(wedged)
	if err := s.Apply(1, recs); !errors.Is(err, wedged) {
		t.Fatalf("faulted apply returned %v, want the injected error", err)
	}
	if s.LastLSN() != 0 || s.Records() != 0 {
		t.Fatalf("faulted apply wrote: lastLSN %d records %d", s.LastLSN(), s.Records())
	}
	s.InjectFault(nil)
	if err := s.Apply(1, recs); err != nil {
		t.Fatalf("apply after fault cleared: %v", err)
	}
	if s.LastLSN() != 2 || s.Records() != 2 {
		t.Fatalf("healed sink lastLSN %d records %d, want 2/2", s.LastLSN(), s.Records())
	}
}
