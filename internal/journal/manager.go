package journal

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	"semagent/internal/clock"
	"semagent/internal/corpus"
	"semagent/internal/metrics"
	"semagent/internal/ontology"
	"semagent/internal/profile"
	"semagent/internal/qa"
	"semagent/internal/storage"
)

// Stores are the four knowledge databases the journal makes durable.
// All fields must be non-nil; LoadStores builds them from a data
// directory with the same defaults the supervisor would use.
type Stores struct {
	Ontology *ontology.Ontology
	Corpus   *corpus.Store
	Profiles *profile.Store
	FAQ      *qa.FAQ
}

// LoadStores loads the storage snapshot in dir (embedded journal LSNs
// included) and fills absent stores with the supervisor's defaults: the
// built-in course ontology and empty corpus/profiles/FAQ.
func LoadStores(dir string) (Stores, error) {
	snap, err := storage.Load(dir)
	if err != nil {
		return Stores{}, err
	}
	s := Stores{
		Ontology: snap.Ontology,
		Corpus:   snap.Corpus,
		Profiles: snap.Profiles,
		FAQ:      snap.FAQ,
	}
	if s.Ontology == nil {
		s.Ontology = ontology.BuildCourseOntology()
	}
	if s.Corpus == nil {
		s.Corpus = corpus.NewStore()
	}
	if s.Profiles == nil {
		s.Profiles = profile.NewStore()
	}
	if s.FAQ == nil {
		s.FAQ = qa.NewFAQ()
	}
	return s, nil
}

// Options tunes the durability/latency trade-off.
type Options struct {
	// SyncEveryRecord fsyncs each journal record before the mutation
	// returns (maximum durability, one disk flush per mutation). The
	// default is group commit: appends are buffered and fsync'd together
	// every GroupWindow, so a crash loses at most one window.
	SyncEveryRecord bool
	// GroupWindow is the group-commit interval (default 20ms). Ignored
	// when SyncEveryRecord is set.
	GroupWindow time.Duration
	// CheckpointBytes triggers a checkpoint when the active segment
	// exceeds this size (default 4 MiB; negative disables the trigger).
	CheckpointBytes int64
	// CheckpointInterval triggers a periodic checkpoint (default 5m;
	// negative disables the trigger).
	CheckpointInterval time.Duration
	// Logger receives operational messages; nil discards them.
	Logger *log.Logger
	// Metrics, if set, registers the journal's counters and latency
	// histograms (semagent_journal_*).
	Metrics *metrics.Registry
	// Clock drives the group-commit and checkpoint tickers and the
	// checkpoint-interval timing. Nil selects the wall clock; tests and
	// the scenario simulator inject a virtual clock and advance it to
	// trigger flushes deterministically instead of sleeping.
	Clock clock.Clock
	// OnSync, when set, runs after every successful fsync with the new
	// durability watermark, synchronously under the appender lock (no
	// new appends can land until it returns). The cluster's replication
	// shipper uses it to stream sealed bytes to a warm standby before
	// any checkpoint can delete them: because it fires inside Rotate's
	// flush too, a segment is always fully shipped before it is sealed
	// and truncated. Keep it fast and never call back into the journal.
	OnSync func(synced uint64)
}

func (o *Options) fill() {
	if o.GroupWindow == 0 {
		o.GroupWindow = groupWindowDefault
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 4 << 20
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 5 * time.Minute
	}
}

// Stats is a snapshot of the journal counters.
type Stats struct {
	LastLSN uint64
	// SyncedLSN is the durability watermark: the highest LSN covered by
	// a successful fsync. Equal to LastLSN in sync-every-record mode; in
	// group-commit mode it lags by at most one window. A crash loses
	// nothing at or below it — the invariant the chaos simulator's
	// durability checker (internal/simulate/gen) asserts across
	// crash/recovery cycles.
	SyncedLSN   uint64
	Records     uint64 // appended this run
	Fsyncs      uint64
	Checkpoints uint64
	Replay      ReplayStats
	// Degraded is the first append/flush error, if any: mutations after
	// it are applied in memory but may not be journaled.
	Degraded error
}

// Manager owns the write-ahead log for a data directory: it replays the
// log over the loaded checkpoint at Open, journals every store mutation
// through the stores' observer hooks, group-commits (or syncs per
// record), and checkpoints + truncates in the background.
type Manager struct {
	dir    string
	stores Stores
	opts   Options
	clk    clock.Clock
	ap     *appender
	lock   *os.File // flock'd journal.lock: single writer per data dir
	logger *log.Logger

	ckptMu      sync.Mutex // serializes checkpoints
	lastCkpt    time.Time  // guarded by ckptMu
	checkpoints uint64     // guarded by ckptMu

	replay ReplayStats

	done chan struct{}
	wg   sync.WaitGroup
}

// Open replays the journal in dir onto the given stores (which the
// caller loaded from the same directory's checkpoint, or built fresh),
// attaches the write-ahead observers to all four stores, and starts the
// background group-commit flusher and checkpointer. The returned
// manager must be Closed to detach the hooks and seal the log.
func Open(dir string, stores Stores, opts Options) (*Manager, error) {
	if stores.Ontology == nil || stores.Corpus == nil || stores.Profiles == nil || stores.FAQ == nil {
		return nil, fmt.Errorf("journal: all four stores must be non-nil (use LoadStores)")
	}
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	// Single-writer exclusion: two processes journaling one directory
	// would interleave LSNs and checkpoint over each other's segments.
	// flock releases automatically when the process dies, so a crash
	// never leaves a stale lock behind.
	lock, err := acquireLock(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, err
	}
	clk := clock.Or(opts.Clock)
	m := &Manager{
		dir:      dir,
		stores:   stores,
		opts:     opts,
		clk:      clk,
		lock:     lock,
		logger:   opts.Logger,
		lastCkpt: clk.Now(),
		done:     make(chan struct{}),
	}

	replay, err := m.replayAll()
	if err != nil {
		_ = lock.Close()
		return nil, err
	}
	m.replay = replay

	// The appender resumes the last segment (torn tail already
	// truncated) and continues the LSN sequence from whichever is
	// further along: the journal itself or a checkpoint that covered
	// records whose segments were already truncated.
	startLSN := replay.LastLSN
	for _, lsn := range []uint64{
		stores.Ontology.JournalLSN(), stores.Corpus.JournalLSN(),
		stores.Profiles.JournalLSN(), stores.FAQ.JournalLSN(),
	} {
		if lsn > startLSN {
			startLSN = lsn
		}
	}
	ap, err := openAppender(dir, replay.LastSegment, startLSN, opts.SyncEveryRecord, newJournalMetrics(opts.Metrics), clk)
	if err != nil {
		_ = lock.Close()
		return nil, err
	}
	ap.onSync = opts.OnSync
	m.ap = ap
	if opts.Metrics != nil {
		opts.Metrics.GaugeFunc("semagent_journal_last_lsn", "last assigned WAL sequence number",
			func() int64 { return int64(ap.LastLSN()) })
	}

	// Recovery is complete: every store now reflects all mutations up
	// to startLSN, so pin their LSNs there before new appends begin.
	stores.Ontology.SetJournalLSN(startLSN)
	stores.Corpus.SetJournalLSN(startLSN)
	stores.Profiles.SetJournalLSN(startLSN)
	stores.FAQ.SetJournalLSN(startLSN)

	m.attach()
	m.startBackground()
	return m, nil
}

// attach installs the write-ahead observers. Each observer runs inside
// its store's write lock, so a store's state and its JournalLSN advance
// atomically — the checkpointer relies on that to embed an exact WAL
// position in every snapshot file.
func (m *Manager) attach() {
	m.stores.Corpus.SetObserver(func(r corpus.Record) uint64 {
		return m.append(TypeCorpusAdd, r)
	})
	m.stores.Profiles.SetObserver(func(ev profile.Event) uint64 {
		return m.append(TypeProfileEvent, ev)
	})
	m.stores.FAQ.SetObserver(func(ev qa.FAQEvent) uint64 {
		return m.append(TypeFAQRecord, ev)
	})
	m.stores.Ontology.SetObserver(func(ev ontology.Event) uint64 {
		return m.append(TypeOntologyOp, ev)
	})
}

// detach removes the observers (shutdown).
func (m *Manager) detach() {
	m.stores.Corpus.SetObserver(nil)
	m.stores.Profiles.SetObserver(nil)
	m.stores.FAQ.SetObserver(nil)
	m.stores.Ontology.SetObserver(nil)
}

func (m *Manager) append(typ string, payload interface{}) uint64 {
	lsn, err := m.ap.Append(typ, payload)
	if err != nil {
		m.logf("journal: append %s: %v (journal degraded)", typ, err)
	}
	return lsn
}

func (m *Manager) startBackground() {
	if !m.opts.SyncEveryRecord {
		m.wg.Add(1)
		// The ticker is created before the goroutine starts so a virtual
		// clock advanced right after Open cannot race its registration.
		t := m.clk.NewTicker(m.opts.GroupWindow)
		go func() {
			defer m.wg.Done()
			defer t.Stop()
			for {
				select {
				case <-t.C():
					if err := m.ap.Sync(); err != nil {
						m.logf("journal: group commit: %v", err)
					}
				case <-m.done:
					return
				}
			}
		}()
	}
	if m.opts.CheckpointBytes < 0 && m.opts.CheckpointInterval < 0 {
		return
	}
	m.wg.Add(1)
	ckptTick := m.clk.NewTicker(time.Second)
	go func() {
		defer m.wg.Done()
		defer ckptTick.Stop()
		for {
			select {
			case <-ckptTick.C():
				if m.shouldCheckpoint() {
					if err := m.Checkpoint(); err != nil {
						m.logf("journal: checkpoint: %v", err)
					}
				}
			case <-m.done:
				return
			}
		}
	}()
}

func (m *Manager) shouldCheckpoint() bool {
	if m.opts.CheckpointBytes > 0 && m.ap.BytesSinceCheckpoint() >= m.opts.CheckpointBytes {
		return true
	}
	if m.opts.CheckpointInterval > 0 {
		m.ckptMu.Lock()
		last := m.lastCkpt
		m.ckptMu.Unlock()
		if m.clk.Since(last) >= m.opts.CheckpointInterval {
			return true
		}
	}
	return false
}

// Checkpoint seals the active journal segment, snapshots the four
// stores via storage.Save (fsync'd atomic writes, each file embedding
// the WAL position its store had at serialization), and deletes the
// sealed segments.
//
// Correctness: rotation happens first, so every record in a sealed
// segment was appended — and, because observers run inside the store
// locks, applied — before the snapshot was taken. Deleting the sealed
// segments therefore never loses a mutation. Mutations racing the
// snapshot land in the new active segment; whether or not a given store
// file already includes one, that file's embedded LSN says so exactly,
// and replay skips records at or below it — a checkpointed mutation is
// never applied twice. A crash between storage.Save and segment
// deletion just leaves sealed segments behind; the same LSN gate
// ignores them on the next boot.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	sealed, err := m.ap.Rotate()
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	err = storage.Save(m.dir, storage.Snapshot{
		Ontology: m.stores.Ontology,
		Corpus:   m.stores.Corpus,
		Profiles: m.stores.Profiles,
		FAQ:      m.stores.FAQ,
	})
	if err != nil {
		// Keep the sealed segments: the snapshot is suspect, the log is
		// still the source of truth.
		return fmt.Errorf("journal: checkpoint save: %w", err)
	}
	seqs, err := listSegments(m.dir)
	if err != nil {
		return fmt.Errorf("journal: checkpoint list: %w", err)
	}
	for _, seq := range seqs {
		if seq <= sealed {
			if err := os.Remove(filepath.Join(m.dir, segmentName(seq))); err != nil {
				return fmt.Errorf("journal: truncate segment %d: %w", seq, err)
			}
		}
	}
	if err := storage.SyncDir(m.dir); err != nil {
		return fmt.Errorf("journal: checkpoint sync dir: %w", err)
	}
	m.checkpoints++
	m.lastCkpt = m.clk.Now()
	m.logf("journal: checkpoint %d complete (sealed through segment %d, lsn %d)",
		m.checkpoints, sealed, m.ap.LastLSN())
	return nil
}

// Abandon simulates a crash (tests and the E11 harness): background
// loops stop and the store hooks detach, but no flush, checkpoint or
// seal happens — the on-disk journal stays exactly as the last fsync
// left it.
func (m *Manager) Abandon() {
	close(m.done)
	m.wg.Wait()
	m.detach()
	// Release the directory lock as a real crash would (the kernel
	// drops flocks with the process), so recovery can proceed.
	_ = m.lock.Close()
}

// Sync forces a group commit now: buffered appends are flushed and
// fsync'd before it returns.
func (m *Manager) Sync() error {
	return m.ap.Sync()
}

// Stats returns the journal counters.
func (m *Manager) Stats() Stats {
	m.ckptMu.Lock()
	ckpts := m.checkpoints
	m.ckptMu.Unlock()
	m.ap.mu.Lock()
	st := Stats{
		LastLSN:     m.ap.lsn,
		SyncedLSN:   m.ap.synced,
		Records:     m.ap.records,
		Fsyncs:      m.ap.fsyncs,
		Checkpoints: ckpts,
		Replay:      m.replay,
		Degraded:    m.ap.err,
	}
	m.ap.mu.Unlock()
	return st
}

// Close stops the background loops, takes a final checkpoint (so the
// next boot starts from a fresh snapshot), detaches the store hooks and
// seals the log. Mutations issued after Close are no longer journaled.
func (m *Manager) Close() error {
	close(m.done)
	m.wg.Wait()
	ckptErr := m.Checkpoint()
	m.detach()
	if err := m.ap.Close(); err != nil && ckptErr == nil {
		ckptErr = err
	}
	_ = m.lock.Close()
	return ckptErr
}

func (m *Manager) logf(format string, args ...interface{}) {
	if m.logger != nil {
		m.logger.Printf(format, args...)
	}
}
