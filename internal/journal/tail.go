package journal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Position is a tail reader's cursor: a byte offset inside a journal
// segment. Offsets only ever point at record boundaries — the reader
// never advances past a torn or partial line.
type Position struct {
	Segment uint64 `json:"segment"`
	Offset  int64  `json:"offset"`
}

// ShippedRecord pairs a decoded journal record with the exact bytes it
// occupied on disk (newline included). Replication appends Raw
// verbatim on the standby, so the replica's segments replay with the
// same decoder and CRCs as the primary's.
type ShippedRecord struct {
	Record
	Raw []byte
}

// TailReader incrementally reads validated records from a journal
// directory, advancing across sealed segments. It is the shipping
// side of WAL replication (DESIGN.md D15): the owner's journal calls
// it from the OnSync hook, so every read happens after an fsync and
// before any checkpoint can truncate the segments just read.
//
// TailReader is not safe for concurrent use; the OnSync hook already
// serializes calls under the appender lock.
type TailReader struct {
	dir     string
	pos     Position
	lastLSN uint64
}

// NewTailReader starts a cursor at the beginning of the journal in
// dir. For a complete replica the reader must be attached before the
// first checkpoint truncates anything — the fabric provisions fresh
// data directories for exactly this reason (see DESIGN.md D15 for the
// seeding caveat on pre-existing directories).
func NewTailReader(dir string) *TailReader {
	return &TailReader{dir: dir}
}

// Pos returns the cursor.
func (t *TailReader) Pos() Position { return t.pos }

// LastLSN returns the highest LSN the reader has returned.
func (t *TailReader) LastLSN() uint64 { return t.lastLSN }

// TailMark captures a tail reader's full cursor state (position AND
// LSN watermark) so a failed ship attempt can rewind. Rewinding only
// the position is not enough: Next refuses records at or below
// lastLSN, so a stale watermark would silently skip the re-read.
type TailMark struct {
	Pos     Position
	LastLSN uint64
}

// Mark snapshots the cursor before a read whose downstream effect
// (sink apply) may fail.
func (t *TailReader) Mark() TailMark {
	return TailMark{Pos: t.pos, LastLSN: t.lastLSN}
}

// Reset rewinds the cursor to a previously captured mark. After a
// tail or sink error the shipper resets and retries from the last
// durable position on the next OnSync, keeping the sink a contiguous
// LSN prefix of the primary's journal — no gaps, ever.
func (t *TailReader) Reset(m TailMark) {
	t.pos = m.Pos
	t.lastLSN = m.LastLSN
}

// Next returns every complete record past the cursor with LSN at most
// maxLSN (0 = no bound), advancing the cursor. It stops without error
// at a torn or partial line — the bytes may simply not be flushed
// yet — and resumes there on the following call. A segment is only
// left behind once a later segment exists (i.e. it was sealed by
// rotation), so the cursor never skips bytes that are still being
// appended.
func (t *TailReader) Next(maxLSN uint64) ([]ShippedRecord, error) {
	seqs, err := listSegments(t.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: tail list: %w", err)
	}
	var out []ShippedRecord
	for i, seq := range seqs {
		if seq < t.pos.Segment {
			continue // already consumed and sealed (or checkpoint-deleted)
		}
		offset := int64(0)
		if seq == t.pos.Segment {
			offset = t.pos.Offset
		}
		stop, newOffset, err := t.readSegment(seq, offset, maxLSN, &out)
		if err != nil {
			return out, err
		}
		t.pos = Position{Segment: seq, Offset: newOffset}
		if stop || i == len(seqs)-1 {
			// Either a bound/tear stopped us mid-segment, or this is the
			// active segment: the cursor stays here.
			return out, nil
		}
		// Fully consumed and a later segment exists: the segment was
		// sealed by rotation, move to the next one.
		t.pos = Position{Segment: seqs[i+1], Offset: 0}
	}
	return out, nil
}

// readSegment scans one segment from offset, appending complete valid
// records to out. stop=true means the scan ended at a record the
// caller must not pass yet (torn line, LSN above the bound, or a
// non-monotonic LSN).
func (t *TailReader) readSegment(seq uint64, offset int64, maxLSN uint64, out *[]ShippedRecord) (stop bool, newOffset int64, err error) {
	path := filepath.Join(t.dir, segmentName(seq))
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			// Checkpoint-deleted under us; synchronous shipping makes
			// this benign (everything in it was already consumed).
			return false, 0, nil
		}
		return false, offset, fmt.Errorf("journal: tail open: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return false, offset, fmt.Errorf("journal: tail seek: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return false, offset, fmt.Errorf("journal: tail read: %w", err)
	}
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return true, offset, nil // partial line: not flushed yet
		}
		line := data[:nl+1]
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			rec, ok := decodeRecord(trimmed)
			if !ok || rec.LSN <= t.lastLSN {
				return true, offset, nil
			}
			if maxLSN > 0 && rec.LSN > maxLSN {
				return true, offset, nil
			}
			t.lastLSN = rec.LSN
			raw := make([]byte, len(line))
			copy(raw, line)
			*out = append(*out, ShippedRecord{Record: rec, Raw: raw})
		}
		offset += int64(len(line))
		data = data[nl+1:]
	}
	return false, offset, nil
}
