package journal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"semagent/internal/storage"
)

// ErrSinkFenced is returned by Sink.Apply when the shipper's epoch is
// below the sink's fence: the shipping owner was deposed, and its late
// writes must not reach the replica (DESIGN.md D15).
var ErrSinkFenced = errors.New("journal: sink fenced (stale ship epoch)")

// sinkSegmentBytes is the sink's rotation threshold. The replica's
// segment boundaries need not mirror the primary's — records are
// self-describing JSONL, and replay walks segments in order.
const sinkSegmentBytes = 4 << 20

// Sink is the receiving side of WAL replication: it owns a warm
// standby's journal directory and appends raw shipped records to its
// own segments, fsync'ing per batch. Promotion is then ordinary
// recovery — LoadStores + Open on the sink's directory replays
// everything the dead owner ever fsync'd.
//
// The sink is fenced by a ship epoch: Apply carries the epoch of the
// link that shipped the batch, and Fence raises the minimum. When a
// room's ownership moves, the fabric fences the standby at the new
// epoch before promoting it, so a dead-but-not-quite owner flushing
// one last group commit gets ErrSinkFenced instead of corrupting the
// replica it no longer backs.
type Sink struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	seq     uint64
	size    int64
	fence   uint64
	lastLSN uint64
	records uint64
	closed  bool
	fault   error
}

// OpenSink opens (or creates) a standby journal directory. Reopening
// an existing sink resumes the highest segment and rescans it for the
// last shipped LSN, so re-shipped batches stay idempotent across a
// standby restart.
func OpenSink(dir string) (*Sink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: sink mkdir: %w", err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: sink list: %w", err)
	}
	s := &Sink{dir: dir, seq: 1}
	if len(seqs) > 0 {
		s.seq = seqs[len(seqs)-1]
		if s.lastLSN, err = scanLastLSN(filepath.Join(dir, segmentName(s.seq))); err != nil {
			return nil, err
		}
	}
	path := filepath.Join(dir, segmentName(s.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: sink open: %w", err)
	}
	if len(seqs) == 0 {
		if err := storage.SyncDir(dir); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("journal: sink sync dir: %w", err)
		}
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	s.f = f
	s.size = st.Size()
	return s, nil
}

// scanLastLSN reads the highest valid LSN in a segment (stopping at
// the first torn line, exactly like replay).
func scanLastLSN(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("journal: sink scan: %w", err)
	}
	defer f.Close()
	var last uint64
	br := bufio.NewReaderSize(f, 256*1024)
	for {
		line, readErr := br.ReadBytes('\n')
		if trimmed := bytes.TrimSpace(line); len(trimmed) > 0 {
			rec, ok := decodeRecord(trimmed)
			if !ok || rec.LSN <= last {
				return last, nil
			}
			last = rec.LSN
		}
		if readErr == io.EOF {
			return last, nil
		}
		if readErr != nil {
			return last, fmt.Errorf("journal: sink scan: %w", readErr)
		}
	}
}

// Dir returns the standby journal directory (what promotion opens).
func (s *Sink) Dir() string { return s.dir }

// Fence raises the sink's minimum ship epoch. Lower fences are
// ignored — fencing never moves backwards.
func (s *Sink) Fence(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.fence {
		s.fence = epoch
	}
}

// Apply appends a batch of shipped records under the given ship epoch
// and fsyncs. Records at or below the last shipped LSN are skipped
// (idempotent re-ship); an epoch below the fence rejects the whole
// batch with ErrSinkFenced.
func (s *Sink) Apply(epoch uint64, recs []ShippedRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("journal: sink closed")
	}
	if epoch < s.fence {
		return fmt.Errorf("%w: ship epoch %d < fence %d", ErrSinkFenced, epoch, s.fence)
	}
	if s.fault != nil {
		return s.fault
	}
	wrote := false
	for _, rec := range recs {
		if rec.LSN <= s.lastLSN {
			continue
		}
		if _, err := s.f.Write(rec.Raw); err != nil {
			return fmt.Errorf("journal: sink append: %w", err)
		}
		s.lastLSN = rec.LSN
		s.records++
		s.size += int64(len(rec.Raw))
		wrote = true
	}
	if !wrote {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("journal: sink sync: %w", err)
	}
	if s.size >= sinkSegmentBytes {
		return s.rotateLocked()
	}
	return nil
}

func (s *Sink) rotateLocked() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("journal: sink rotate: %w", err)
	}
	s.seq++
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(s.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: sink rotate: %w", err)
	}
	if err := storage.SyncDir(s.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: sink rotate sync dir: %w", err)
	}
	s.f = f
	s.size = 0
	return nil
}

// InjectFault makes every subsequent Apply fail with err before
// writing anything (nil clears the fault). Chaos harnesses use it to
// model a lagging or wedged standby: the shipper keeps its tail
// cursor parked at the last durable position, so healing the fault
// resumes shipping with no gap.
func (s *Sink) InjectFault(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = err
}

// LastLSN returns the highest LSN the sink has durably applied — the
// replication watermark the failover invariant compares against the
// dead owner's SyncedLSN.
func (s *Sink) LastLSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLSN
}

// Records returns how many records this sink has appended this run.
func (s *Sink) Records() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Close seals the sink. Promotion closes the sink before opening a
// real journal manager on its directory (which takes the flock).
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
