// Package journal is the durability subsystem: an append-only,
// fsync'd write-ahead log of knowledge mutations (learner-corpus
// records, user-profile events, FAQ pairs and ontology teach/author
// operations), replayed over the last checkpoint at boot, plus a
// background checkpointer that snapshots the four stores via
// storage.Save and truncates the log.
//
// The paper's premise is an agent that stays online and keeps learning
// from dialogue; before this package every learned fact lived only in
// memory until a graceful shutdown. With the journal attached, a crash,
// OOM-kill or power loss loses at most the mutations after the last
// fsync'd journal record, and a checkpointed mutation is never applied
// twice (see DESIGN.md D9 for the recovery invariant).
//
// Layout inside the data directory (next to the storage files):
//
//	journal.00000001.wal    sealed/active log segments, JSONL records
//	ontology.xml ...        checkpoint files written by storage.Save,
//	                        each embedding the WAL position it covers
//
// Each log record is one line:
//
//	{"lsn":17,"type":"corpus.add","crc":2843420195,"data":{...}}
//
// lsn is a monotonically increasing sequence number shared by all four
// stores; crc is the IEEE CRC-32 of the data bytes. Recovery stops at
// the first torn or corrupt line (a crash mid-append), truncates the
// tail, and resumes appending from there.
package journal

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Record types routed to the four stores.
const (
	TypeCorpusAdd    = "corpus.add"
	TypeProfileEvent = "profile.event"
	TypeFAQRecord    = "faq.record"
	TypeOntologyOp   = "ontology.op"
)

// Record is one journaled mutation.
type Record struct {
	LSN  uint64          `json:"lsn"`
	Type string          `json:"type"`
	CRC  uint32          `json:"crc"`
	Data json.RawMessage `json:"data"`
}

// encodeRecord renders a record as one JSONL line (newline included).
func encodeRecord(lsn uint64, typ string, payload interface{}) ([]byte, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("journal: encode %s payload: %w", typ, err)
	}
	rec := Record{LSN: lsn, Type: typ, CRC: crc32.ChecksumIEEE(data), Data: data}
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode %s record: %w", typ, err)
	}
	return append(line, '\n'), nil
}

// decodeRecord parses one line; ok=false means the line is torn or
// corrupt (invalid JSON, missing fields, or CRC mismatch) and replay
// must stop there.
func decodeRecord(line []byte) (Record, bool) {
	var rec Record
	if err := json.Unmarshal(line, &rec); err != nil {
		return Record{}, false
	}
	if rec.LSN == 0 || rec.Type == "" || rec.Data == nil {
		return Record{}, false
	}
	if crc32.ChecksumIEEE(rec.Data) != rec.CRC {
		return Record{}, false
	}
	return rec, true
}
