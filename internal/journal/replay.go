package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"semagent/internal/corpus"
	"semagent/internal/ontology"
	"semagent/internal/profile"
	"semagent/internal/qa"
)

// ReplayStats summarizes boot-time recovery.
type ReplayStats struct {
	Segments int    // journal segments scanned
	Applied  int    // records applied to a store
	Skipped  int    // records at or below a store's checkpointed LSN
	Errors   int    // records that failed to apply (logged, replay continues)
	TornTail int64  // bytes truncated from a torn segment tail
	LastLSN  uint64 // highest LSN seen in the journal
	// LastSegment is the segment the appender resumes (0 = none found,
	// start fresh).
	LastSegment uint64
}

// replayAll scans every journal segment in order and applies each
// record whose LSN exceeds the target store's checkpointed LSN. It
// stops at the first torn or corrupt record, truncates that segment
// there, and drops any later segments (the WAL prefix rule: nothing
// after a tear can be trusted to be ordered).
func (m *Manager) replayAll() (ReplayStats, error) {
	var st ReplayStats
	seqs, err := listSegments(m.dir)
	if err != nil {
		return st, fmt.Errorf("journal: list segments: %w", err)
	}
	for i, seq := range seqs {
		st.Segments++
		st.LastSegment = seq
		path := filepath.Join(m.dir, segmentName(seq))
		clean, validOffset, err := m.replaySegment(path, &st)
		if err != nil {
			return st, err
		}
		if clean {
			continue
		}
		// Torn or corrupt record: truncate this segment to the last
		// complete record and drop anything after it.
		fi, err := os.Stat(path)
		if err != nil {
			return st, fmt.Errorf("journal: stat %s: %w", path, err)
		}
		st.TornTail += fi.Size() - validOffset
		if err := truncateFile(path, validOffset); err != nil {
			return st, fmt.Errorf("journal: truncate %s: %w", path, err)
		}
		for _, later := range seqs[i+1:] {
			laterPath := filepath.Join(m.dir, segmentName(later))
			if fi, err := os.Stat(laterPath); err == nil {
				st.TornTail += fi.Size()
			}
			if err := os.Remove(laterPath); err != nil {
				return st, fmt.Errorf("journal: drop %s: %w", laterPath, err)
			}
			m.logf("journal: dropped segment %d after torn record in segment %d", later, seq)
		}
		m.logf("journal: truncated torn tail of segment %d at byte %d", seq, validOffset)
		break
	}
	return st, nil
}

// replaySegment applies one segment's records. It returns clean=false
// with the byte offset of the end of the last valid record when the
// scan hits a torn or corrupt line.
func (m *Manager) replaySegment(path string, st *ReplayStats) (clean bool, validOffset int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, fmt.Errorf("journal: open %s: %w", path, err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 256*1024)
	var offset int64
	for {
		line, readErr := br.ReadBytes('\n')
		if len(line) > 0 {
			trimmed := bytes.TrimSpace(line)
			if len(trimmed) > 0 {
				rec, ok := decodeRecord(trimmed)
				if !ok || rec.LSN <= st.LastLSN {
					// Torn write, corruption, or a sequence anomaly —
					// the log is only trustworthy up to here.
					return false, offset, nil
				}
				st.LastLSN = rec.LSN
				m.applyRecord(rec, st)
			}
			offset += int64(len(line))
		}
		if readErr == io.EOF {
			return true, offset, nil
		}
		if readErr != nil {
			return false, 0, fmt.Errorf("journal: read %s: %w", path, readErr)
		}
	}
}

// applyRecord routes one journal record to its store, honoring the
// store's checkpointed LSN so nothing is applied twice.
func (m *Manager) applyRecord(rec Record, st *ReplayStats) {
	switch rec.Type {
	case TypeCorpusAdd:
		if rec.LSN <= m.stores.Corpus.JournalLSN() {
			st.Skipped++
			return
		}
		var r corpus.Record
		if err := json.Unmarshal(rec.Data, &r); err != nil {
			st.Errors++
			m.logf("journal: replay lsn %d: corpus record: %v", rec.LSN, err)
			return
		}
		m.stores.Corpus.Put(r)
		st.Applied++
	case TypeProfileEvent:
		if rec.LSN <= m.stores.Profiles.JournalLSN() {
			st.Skipped++
			return
		}
		var ev profile.Event
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			st.Errors++
			m.logf("journal: replay lsn %d: profile event: %v", rec.LSN, err)
			return
		}
		m.stores.Profiles.Apply(ev)
		st.Applied++
	case TypeFAQRecord:
		if rec.LSN <= m.stores.FAQ.JournalLSN() {
			st.Skipped++
			return
		}
		var ev qa.FAQEvent
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			st.Errors++
			m.logf("journal: replay lsn %d: faq event: %v", rec.LSN, err)
			return
		}
		m.stores.FAQ.Apply(ev)
		st.Applied++
	case TypeOntologyOp:
		if rec.LSN <= m.stores.Ontology.JournalLSN() {
			st.Skipped++
			return
		}
		var ev ontology.Event
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			st.Errors++
			m.logf("journal: replay lsn %d: ontology event: %v", rec.LSN, err)
			return
		}
		if err := m.stores.Ontology.Apply(ev); err != nil {
			st.Errors++
			m.logf("journal: replay lsn %d: ontology %s: %v", rec.LSN, ev.Op, err)
			return
		}
		st.Applied++
	default:
		// Unknown record type (a newer writer?): skip, keep replaying.
		st.Errors++
		m.logf("journal: replay lsn %d: unknown record type %q", rec.LSN, rec.Type)
	}
}

func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}
