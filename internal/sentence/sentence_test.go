package sentence

import (
	"testing"

	"semagent/internal/linkgrammar"
)

func TestClassifyFivePatterns(t *testing.T) {
	cases := []struct {
		text    string
		want    Pattern
		negated bool
	}{
		// The five patterns of §4.3.
		{"The stack has a push operation.", Simple, false},
		{"A queue is a linear structure.", Simple, false},
		{"The tree doesn't have a pop method.", Negative, true},
		{"The stack is not empty.", Negative, true},
		{"I never use arrays.", Negative, true},
		{"Does a stack have a pop method?", Question, false},
		{"Is the tree balanced?", Question, false},
		{"Can I push a value?", Question, false},
		{"What is a stack?", WHQuestion, false},
		{"Which data structure has the method push?", WHQuestion, false},
		{"How does a queue work?", WHQuestion, false},
		{"Push the data into the stack.", Imperative, false},
		{"Insert the value into the tree.", Imperative, false},
		{"Please explain the algorithm.", Imperative, false},
		// Negated question keeps its interrogative pattern.
		{"Doesn't the stack have push?", Question, true},
		// Echo question via question mark.
		{"The stack has pop?", Question, false},
	}
	for _, tc := range cases {
		got := ClassifyText(tc.text)
		if got.Pattern != tc.want {
			t.Errorf("%q: pattern = %s, want %s", tc.text, got.Pattern, tc.want)
		}
		if got.Negated != tc.negated {
			t.Errorf("%q: negated = %v, want %v", tc.text, got.Negated, tc.negated)
		}
	}
}

func TestWHWordExtraction(t *testing.T) {
	c := ClassifyText("What is a stack?")
	if c.WHWord != "what" {
		t.Errorf("WHWord = %q, want what", c.WHWord)
	}
	c = ClassifyText("What's a queue?")
	if c.WHWord != "what" {
		t.Errorf("WHWord = %q, want what (contracted)", c.WHWord)
	}
}

func TestEmptyInput(t *testing.T) {
	c := Classify(nil, false)
	if c.Pattern != Simple || c.Negated {
		t.Errorf("empty input should be a non-negated simple sentence, got %+v", c)
	}
}

func TestRefineWithLinkage(t *testing.T) {
	p, err := linkgrammar.NewEnglishParser()
	if err != nil {
		t.Fatal(err)
	}
	// Lexically ambiguous: "push" opens both imperatives and (rarely)
	// noun phrases; the linkage confirms the imperative.
	res, err := p.Parse("Push the data into the stack.")
	if err != nil || !res.Valid() {
		t.Fatalf("parse failed: %v", err)
	}
	c := ClassifyText("Push the data into the stack.")
	refined := Refine(c, res.Best())
	if refined.Pattern != Imperative {
		t.Errorf("refined pattern = %s, want imperative", refined.Pattern)
	}
	if got := Refine(c, nil); got.Pattern != c.Pattern {
		t.Errorf("nil linkage should not change the pattern")
	}
}

func TestPatternStringAndIsQuestion(t *testing.T) {
	if !Question.IsQuestion() || !WHQuestion.IsQuestion() {
		t.Error("question patterns must report IsQuestion")
	}
	if Simple.IsQuestion() || Negative.IsQuestion() || Imperative.IsQuestion() {
		t.Error("non-question patterns must not report IsQuestion")
	}
	names := map[Pattern]string{
		Simple: "simple", Negative: "negative", Question: "question",
		WHQuestion: "wh-question", Imperative: "imperative",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("String(%d) = %q, want %q", p, p.String(), want)
		}
	}
}

func TestContentTokens(t *testing.T) {
	toks := ContentTokens([]string{"the", "stack", "has", "a", "push", "operation"})
	want := []string{"stack", "push", "operation"}
	if len(toks) != len(want) {
		t.Fatalf("ContentTokens = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("ContentTokens[%d] = %q, want %q", i, toks[i], want[i])
		}
	}
}
