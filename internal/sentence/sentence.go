// Package sentence implements the Sentence Pattern Classification stage
// of the paper's Semantic Agent (§4.3): every utterance is classified
// into one of five patterns — simple, negative, question (yes/no),
// WH-question and imperative — before semantic keyword filtering. The
// classifier is lexical; when a linkage from the link grammar parser is
// available its wall labels (Wd/Wq/Wi) refine the decision.
package sentence

import (
	"strings"

	"semagent/internal/linkgrammar"
)

// Pattern is one of the paper's five sentence patterns.
type Pattern int8

// The five patterns of §4.3.
const (
	Simple Pattern = iota + 1
	Negative
	Question   // yes/no question
	WHQuestion // question fronted by a wh-word
	Imperative
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Simple:
		return "simple"
	case Negative:
		return "negative"
	case Question:
		return "question"
	case WHQuestion:
		return "wh-question"
	case Imperative:
		return "imperative"
	default:
		return "unknown"
	}
}

// IsQuestion reports whether the pattern is interrogative.
func (p Pattern) IsQuestion() bool { return p == Question || p == WHQuestion }

// Classification is the result of analysing one sentence.
type Classification struct {
	Pattern Pattern
	// Negated is true when the sentence contains a negation, regardless
	// of the primary pattern ("doesn't the stack have push?" is a
	// negated question). For a declarative sentence Negated==true
	// coincides with Pattern==Negative.
	Negated bool
	// WHWord is the fronting word of a WH-question ("what", "which").
	WHWord string
	// Tokens are the tokens the classification was made from.
	Tokens []string
}

var whWords = map[string]bool{
	"what": true, "which": true, "who": true, "whom": true, "whose": true,
	"how": true, "why": true, "where": true, "when": true, "what's": true,
}

var auxWords = map[string]bool{
	"is": true, "are": true, "am": true, "was": true, "were": true,
	"do": true, "does": true, "did": true,
	"can": true, "could": true, "will": true, "would": true, "should": true,
	"must": true, "may": true, "might": true, "shall": true,
	"isn't": true, "aren't": true, "wasn't": true, "weren't": true,
	"don't": true, "doesn't": true, "didn't": true,
	"can't": true, "won't": true, "wouldn't": true, "shouldn't": true,
	"couldn't": true, "mustn't": true,
}

var negationWords = map[string]bool{
	"not": true, "never": true, "no": true, "nothing": true, "none": true,
	"doesn't": true, "don't": true, "didn't": true, "isn't": true,
	"aren't": true, "wasn't": true, "weren't": true, "can't": true,
	"cannot": true, "won't": true, "wouldn't": true, "shouldn't": true,
	"couldn't": true, "mustn't": true,
}

// imperativeVerbs are base-form verbs that plausibly open an imperative
// in classroom chat.
var imperativeVerbs = map[string]bool{
	"push": true, "pop": true, "insert": true, "delete": true, "remove": true,
	"add": true, "store": true, "use": true, "implement": true, "create": true,
	"build": true, "define": true, "traverse": true, "search": true,
	"sort": true, "check": true, "print": true, "read": true, "write": true,
	"look": true, "open": true, "close": true, "try": true, "remember": true,
	"explain": true, "answer": true, "ask": true, "discuss": true,
	"review": true, "practice": true, "compare": true, "balance": true,
	"enqueue": true, "dequeue": true, "take": true, "put": true, "draw": true,
	"please": true, "let": true, "visit": true,
}

// Classify analyses a tokenized sentence. questionMark should be true
// when the raw text ended with '?'.
func Classify(tokens []string, questionMark bool) Classification {
	c := Classification{Pattern: Simple, Tokens: tokens}
	if len(tokens) == 0 {
		return c
	}
	for _, t := range tokens {
		if negationWords[t] {
			c.Negated = true
			break
		}
	}
	first := tokens[0]
	switch {
	case whWords[first]:
		c.Pattern = WHQuestion
		c.WHWord = strings.TrimSuffix(first, "'s")
	case auxWords[first]:
		// Aux-fronted: yes/no question ("does a stack have pop?").
		c.Pattern = Question
	case questionMark:
		// Punctuated as a question without fronting — echo questions
		// ("the stack has pop?") count as yes/no questions.
		c.Pattern = Question
	case imperativeVerbs[first]:
		c.Pattern = Imperative
	case c.Negated:
		c.Pattern = Negative
	}
	// A WH or aux question that also negates keeps its interrogative
	// pattern; Negated stays true for the semantic stage.
	if c.Pattern == Simple && c.Negated {
		c.Pattern = Negative
	}
	return c
}

// ClassifyText tokenizes and classifies raw text.
func ClassifyText(text string) Classification {
	return Classify(linkgrammar.Tokenize(text), linkgrammar.EndsWithQuestionMark(text))
}

// Refine adjusts a lexical classification using a linkage's wall links:
// Wq marks questions, Wi imperatives, Wd declaratives. The lexical
// Negated flag is kept.
func Refine(c Classification, lk *linkgrammar.Linkage) Classification {
	if lk == nil {
		return c
	}
	switch {
	case lk.HasLabel("Wq"):
		if !c.Pattern.IsQuestion() {
			c.Pattern = Question
		}
	case lk.HasLabel("Wi"):
		c.Pattern = Imperative
	case lk.HasLabel("Wd"):
		if c.Pattern.IsQuestion() {
			// The parser found a declarative structure; trust the
			// question mark only if the lexical form was interrogative.
			if c.WHWord == "" && !auxWords[firstToken(c.Tokens)] {
				if c.Negated {
					c.Pattern = Negative
				} else {
					c.Pattern = Simple
				}
			}
		}
	}
	return c
}

func firstToken(tokens []string) string {
	if len(tokens) == 0 {
		return ""
	}
	return tokens[0]
}

// Stopwords are function words ignored by keyword extraction and corpus
// similarity scoring.
var Stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "this": true, "that": true,
	"these": true, "those": true, "is": true, "are": true, "am": true,
	"was": true, "were": true, "be": true, "been": true, "being": true,
	"do": true, "does": true, "did": true, "have": true, "has": true,
	"had": true, "i": true, "you": true, "we": true, "they": true,
	"he": true, "she": true, "it": true, "me": true, "him": true,
	"her": true, "us": true, "them": true, "my": true, "your": true,
	"our": true, "their": true, "its": true, "his": true, "of": true,
	"in": true, "on": true, "at": true, "to": true, "into": true,
	"from": true, "with": true, "by": true, "for": true, "and": true,
	"or": true, "not": true, "no": true, "so": true, "very": true,
	"can": true, "could": true, "will": true, "would": true,
	"should": true, "must": true, "may": true, "might": true,
	"what": true, "which": true, "who": true, "how": true, "why": true,
	"where": true, "when": true, "there": true, "here": true,
	"doesn't": true, "don't": true, "didn't": true, "isn't": true,
	"aren't": true, "please": true, "yes": true, "ok": true,
}

// ContentTokens filters stopwords out of a token list.
func ContentTokens(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !Stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}
