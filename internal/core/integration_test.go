package core

import (
	"strings"
	"testing"
	"time"

	"semagent/internal/chat"
	"semagent/internal/storage"
	"semagent/internal/workload"
)

// TestSessionPersistenceContinuity runs a supervised classroom session,
// persists every database, restarts the supervisor from disk and checks
// that the accumulated knowledge (FAQ answers, corpus suggestions,
// learner profiles) carries over — the paper's always-online agents
// surviving a service restart.
func TestSessionPersistenceContinuity(t *testing.T) {
	dir := t.TempDir()

	// ---- session 1 -------------------------------------------------
	s1 := newSupervisor(t)
	gen := workload.NewGenerator(99, s1.Ontology())
	for _, msg := range gen.Session(2, 3, 120) {
		if _, err := s1.Process(msg.Room, msg.User, msg.Sample.Text); err != nil {
			t.Fatal(err)
		}
	}
	// Ask a question so the FAQ has a deterministic entry.
	if _, err := s1.Process("room-0", "alice", "What is a stack?"); err != nil {
		t.Fatal(err)
	}
	if s1.Corpus().Len() == 0 || s1.FAQ().Len() == 0 {
		t.Fatalf("session 1 accumulated nothing: corpus=%d faq=%d", s1.Corpus().Len(), s1.FAQ().Len())
	}
	err := storage.Save(dir, storage.Snapshot{
		Ontology: s1.Ontology(),
		Corpus:   s1.Corpus(),
		Profiles: s1.Profiles(),
		FAQ:      s1.FAQ(),
	})
	if err != nil {
		t.Fatalf("save: %v", err)
	}

	// ---- session 2 (restart) ----------------------------------------
	snap, err := storage.Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	s2, err := New(Config{
		Ontology: snap.Ontology,
		Corpus:   snap.Corpus,
		Profiles: snap.Profiles,
		FAQ:      snap.FAQ,
	})
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if s2.Corpus().Len() != s1.Corpus().Len() {
		t.Errorf("corpus lost: %d -> %d", s1.Corpus().Len(), s2.Corpus().Len())
	}
	// The repeated question must now hit the FAQ from the prior session.
	a, err := s2.Process("room-0", "bob", "What is a stack?")
	if err != nil {
		t.Fatal(err)
	}
	if a.QAAnswer == nil || !a.QAAnswer.Answered {
		t.Fatal("question unanswered after restart")
	}
	if a.QAAnswer.Source != "faq" {
		t.Errorf("answer source = %s, want faq (carried over)", a.QAAnswer.Source)
	}
	// Profiles carried over: alice from session 1 must still exist.
	if _, ok := s2.Profiles().Get("alice"); !ok {
		t.Error("alice's profile lost across restart")
	}
}

// TestSupervisedChatRoomEndToEnd drives the full stack — TCP server,
// supervisor, commands — as one scenario.
func TestSupervisedChatRoomEndToEnd(t *testing.T) {
	sup := newSupervisor(t)
	server := chat.NewServer(chat.ServerOptions{Supervisor: sup.ChatSupervisor()})
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	alice, err := chat.Dial(addr.String(), "ds", "alice", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	bob, err := chat.Dial(addr.String(), "ds", "bob", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()

	expect := func(c *chat.Client, what string, pred func(chat.Message) bool) chat.Message {
		t.Helper()
		deadline := time.After(3 * time.Second)
		for {
			select {
			case m, ok := <-c.Receive():
				if !ok {
					t.Fatalf("connection closed waiting for %s", what)
				}
				if pred(m) {
					return m
				}
			case <-deadline:
				t.Fatalf("timeout waiting for %s", what)
			}
		}
	}

	// A question gets a public QA answer visible to both.
	if err := alice.Say("What is a queue?"); err != nil {
		t.Fatal(err)
	}
	expect(bob, "qa answer", func(m chat.Message) bool {
		return m.Type == chat.TypeAgent && m.Agent == AgentQA &&
			strings.Contains(m.Text, "First In, First Out")
	})

	// A grammar slip gets a private Learning_Angel response.
	if err := bob.Say("The stack have a push operation."); err != nil {
		t.Fatal(err)
	}
	expect(bob, "angel response", func(m chat.Message) bool {
		return m.Type == chat.TypeAgent && m.Agent == AgentAngel && m.Private
	})

	// /faq shows the accumulated entry, privately.
	if err := alice.Say("/faq"); err != nil {
		t.Fatal(err)
	}
	expect(alice, "faq command output", func(m chat.Message) bool {
		return m.Type == chat.TypeAgent && strings.Contains(m.Text, "queue")
	})

	// Supervision state reflects the dialogue.
	if sup.Analyzer().Total() < 2 {
		t.Errorf("analyzer total = %d", sup.Analyzer().Total())
	}
}
