// Package core composes the paper's full supervision pipeline
// (Figure 3): every chat-room message flows through the Learning_Angel
// Agent (syntax), the Semantic Agent (ontology-distance semantics) and
// the Questions-and-Answers System, while the Learning Statistic
// Analyzer and Corpora Generator record the dialogue into the Learner
// Corpus, User Profile and FAQ databases. This is the library's main
// entry point — a downstream user builds a Supervisor and attaches it
// to a chat room (package chat) or calls Process directly.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"semagent/internal/angel"
	"semagent/internal/chat"
	"semagent/internal/corpus"
	"semagent/internal/linkgrammar"
	"semagent/internal/metrics"
	"semagent/internal/ontology"
	"semagent/internal/profile"
	"semagent/internal/qa"
	"semagent/internal/recommend"
	"semagent/internal/semantic"
	"semagent/internal/sentence"
	"semagent/internal/stats"
)

// Agent names used in chat responses.
const (
	AgentAngel    = "Learning_Angel"
	AgentSemantic = "Semantic_Agent"
	AgentQA       = "QA_System"
)

// Config assembles a Supervisor. Zero values select the built-in
// course-domain components.
type Config struct {
	// Ontology defaults to the built-in Data Structure course ontology.
	Ontology *ontology.Ontology
	// Dictionary defaults to the built-in English dictionary; ontology
	// terms are taught to it automatically (TeachOntologyTerms).
	Dictionary *linkgrammar.Dictionary
	// ParserOptions defaults to linkgrammar.DefaultOptions. Its
	// CacheSize field is tri-state at this layer: 0 enables the parse
	// cache at linkgrammar.DefaultParseCacheSize (identical classroom
	// sentences recur heavily, see DESIGN.md D6), a positive value sets
	// the capacity, a negative value disables caching.
	ParserOptions linkgrammar.Options
	// SemanticThreshold defaults to ontology.DefaultRelatedThreshold.
	SemanticThreshold int
	// Corpus defaults to a fresh store.
	Corpus *corpus.Store
	// Profiles defaults to a fresh store.
	Profiles *profile.Store
	// FAQ defaults to a fresh database.
	FAQ *qa.FAQ
	// DisableRecording turns off corpus/profile/stats updates
	// (useful for pure benchmarking of the agent pipeline).
	DisableRecording bool
	// Now supplies the event timestamps recorded into the statistic
	// analyzer, the corpora generator and (through them) the learner
	// corpus. Nil selects the wall clock. The scenario simulator
	// (DESIGN.md D11) injects its virtual clock here so a replayed
	// session carries identical timestamps every run.
	Now func() time.Time
	// Metrics, if set, registers per-stage latency histograms
	// (semagent_stage_seconds{stage=angel|semantic|qa}), the whole-
	// pipeline semagent_process_seconds, and per-verdict message
	// counters. Nil runs the hot path uninstrumented at zero cost.
	Metrics *metrics.Registry
}

// supMetrics are the supervisor's hot-path instruments.
type supMetrics struct {
	process                  *metrics.Histogram
	angel, semantic, qaStage *metrics.Histogram
	verdicts                 map[corpus.Verdict]*metrics.Counter
}

func newSupMetrics(r *metrics.Registry) *supMetrics {
	if r == nil {
		return nil
	}
	m := &supMetrics{
		process:  r.DurationHistogram("semagent_process_seconds", "whole supervision pipeline latency per message"),
		angel:    r.DurationHistogram("semagent_stage_seconds", "supervision stage latency", metrics.L("stage", "angel")),
		semantic: r.DurationHistogram("semagent_stage_seconds", "supervision stage latency", metrics.L("stage", "semantic")),
		qaStage:  r.DurationHistogram("semagent_stage_seconds", "supervision stage latency", metrics.L("stage", "qa")),
		verdicts: make(map[corpus.Verdict]*metrics.Counter),
	}
	for _, v := range []corpus.Verdict{
		corpus.VerdictCorrect, corpus.VerdictSyntaxError,
		corpus.VerdictSemanticError, corpus.VerdictQuestion,
	} {
		m.verdicts[v] = r.Counter("semagent_messages_total", "supervised messages by verdict", metrics.L("verdict", v.String()))
	}
	return m
}

func (m *supMetrics) record(v corpus.Verdict, start time.Time) {
	m.process.ObserveSince(start)
	if c := m.verdicts[v]; c != nil {
		c.Inc()
	}
}

// Supervisor is the composed system. It is safe for concurrent use:
// the stores (corpus, profiles, FAQ, dictionary, analyzer, generator)
// lock internally, the agents keep no per-message state, and the
// parser's result cache locks internally — so many goroutines (one per
// chat connection, or a pipeline.Pipeline worker pool) may call Process
// on one Supervisor at once. Ontology reads never lock at all: Process
// pins one immutable ontology.Snapshot per message, so the syntax,
// semantic, QA and topic stages of a message all see one consistent
// knowledge state even while the live ontology is being mutated.
type Supervisor struct {
	onto     *ontology.Ontology
	dict     *linkgrammar.Dictionary
	parser   *linkgrammar.Parser
	angel    *angel.Agent
	semantic *semantic.Agent
	qa       *qa.System
	corpus   *corpus.Store
	profiles *profile.Store
	faq      *qa.FAQ
	analyzer *stats.Analyzer
	gen      *stats.CorporaGenerator
	recorder bool
	now      func() time.Time
	met      *supMetrics

	// Vocabulary follows the snapshot publish path: when Process sees a
	// snapshot version it has not taught the dictionary from yet, it
	// defines the new terms (Define bumps the dictionary generation,
	// which flushes the parse cache — the D6 invalidation hook).
	vocabMu      sync.Mutex
	vocabVersion atomic.Uint64
	taught       map[string]bool
}

// New builds a Supervisor from the config.
func New(cfg Config) (*Supervisor, error) {
	onto := cfg.Ontology
	if onto == nil {
		onto = ontology.BuildCourseOntology()
	}
	dict := cfg.Dictionary
	if dict == nil {
		var err error
		dict, err = linkgrammar.NewEnglishDictionary()
		if err != nil {
			return nil, fmt.Errorf("build dictionary: %w", err)
		}
	}
	popts := cfg.ParserOptions
	switch {
	case popts.CacheSize == 0:
		popts.CacheSize = linkgrammar.DefaultParseCacheSize
	case popts.CacheSize < 0:
		popts.CacheSize = 0
	}
	parser := linkgrammar.NewParser(dict, popts)

	store := cfg.Corpus
	if store == nil {
		store = corpus.NewStore()
	}
	profiles := cfg.Profiles
	if profiles == nil {
		profiles = profile.NewStore()
	}
	faq := cfg.FAQ
	if faq == nil {
		faq = qa.NewFAQ()
	}

	s := &Supervisor{
		onto:     onto,
		dict:     dict,
		parser:   parser,
		angel:    angel.New(parser, store, onto, angel.DefaultOptions()),
		semantic: semantic.New(onto, cfg.SemanticThreshold),
		qa:       qa.New(onto, store, faq),
		corpus:   store,
		profiles: profiles,
		faq:      faq,
		analyzer: stats.NewAnalyzer(),
		gen:      stats.NewCorporaGenerator(store, faq),
		recorder: !cfg.DisableRecording,
		now:      cfg.Now,
		met:      newSupMetrics(cfg.Metrics),
		taught:   make(map[string]bool),
	}
	if s.now == nil {
		s.now = timeNow
	}
	if err := s.syncVocabulary(onto.Snapshot()); err != nil {
		return nil, fmt.Errorf("teach ontology terms: %w", err)
	}
	return s, nil
}

// syncVocabulary teaches the dictionary every term of the snapshot it
// has not defined yet (multi-word terms word by word), then records the
// snapshot version. Defining a word bumps the dictionary generation,
// which invalidates the link-grammar parse cache — so publishing an
// ontology snapshot with new course vocabulary automatically flushes
// stale parses. Re-syncing an already-taught snapshot defines nothing
// and leaves the cache warm.
func (s *Supervisor) syncVocabulary(snap *ontology.Snapshot) error {
	s.vocabMu.Lock()
	defer s.vocabMu.Unlock()
	if err := teachTerms(s.dict, snap.Items(), s.taught); err != nil {
		return err
	}
	if v := snap.Version(); v > s.vocabVersion.Load() {
		s.vocabVersion.Store(v)
	}
	return nil
}

// teachTerms defines every not-yet-taught term word as a domain noun,
// recording what it taught in taught (shared by TeachOntologyTerms and
// the supervisor's incremental syncVocabulary).
func teachTerms(dict *linkgrammar.Dictionary, items []*ontology.Item, taught map[string]bool) error {
	for _, it := range items {
		names := append([]string{it.Name}, it.Aliases...)
		for _, name := range names {
			for _, word := range linkgrammar.Tokenize(name) {
				if taught[word] || sentence.Stopwords[word] || len(word) < 3 {
					continue
				}
				taught[word] = true
				if err := dict.Define(word, "<domain-term>"); err != nil {
					return fmt.Errorf("define %q: %w", word, err)
				}
			}
		}
	}
	return nil
}

// TeachOntologyTerms gives every ontology term a domain-noun reading in
// the dictionary (multi-word terms word by word), so newly authored
// course vocabulary parses. Terms that already exist as verbs
// ("balance", "access") gain the noun reading as an alternative —
// "the balance method" must parse. Function words inside multi-word
// aliases ("last in first out") are skipped. The terms are read from
// one consistent ontology snapshot; the Supervisor itself uses the
// incremental per-snapshot variant (syncVocabulary).
func TeachOntologyTerms(dict *linkgrammar.Dictionary, onto *ontology.Ontology) error {
	return teachTerms(dict, onto.Snapshot().Items(), make(map[string]bool))
}

// Accessors for the composed subsystems.
func (s *Supervisor) Ontology() *ontology.Ontology { return s.onto }
func (s *Supervisor) Parser() *linkgrammar.Parser  { return s.parser }
func (s *Supervisor) Corpus() *corpus.Store        { return s.corpus }
func (s *Supervisor) Profiles() *profile.Store     { return s.profiles }
func (s *Supervisor) FAQ() *qa.FAQ                 { return s.faq }
func (s *Supervisor) QA() *qa.System               { return s.qa }
func (s *Supervisor) Analyzer() *stats.Analyzer    { return s.analyzer }
func (s *Supervisor) Angel() *angel.Agent          { return s.angel }
func (s *Supervisor) Semantic() *semantic.Agent    { return s.semantic }
func (s *Supervisor) Generator() *stats.CorporaGenerator {
	return s.gen
}

// Assessment is the complete result of supervising one message.
type Assessment struct {
	Room, User, Text string
	Classification   sentence.Classification
	// Verdict summarizes the outcome for the corpus.
	Verdict corpus.Verdict
	// Syntax is the Learning_Angel report (nil for questions).
	Syntax *angel.Report
	// Semantic is the Semantic Agent analysis (nil unless syntax passed).
	Semantic *semantic.Analysis
	// QAAnswer is set for questions.
	QAAnswer *qa.Answer
	// Responses are the agent messages to show in the chat room.
	Responses []chat.Response
}

// Process supervises one message: the full pipeline of Figure 3. It
// pins one immutable ontology snapshot up front — every stage of this
// message (topics, QA, syntax, semantics) reads that snapshot, so a
// concurrent ontology mutation can never produce a torn assessment; at
// worst the message is judged against the knowledge state from just
// before the mutation (the bounded-staleness window of DESIGN.md D8).
func (s *Supervisor) Process(room, user, text string) (*Assessment, error) {
	snap, err := s.pinSnapshot()
	if err != nil {
		return nil, err
	}
	return s.processWith(snap, room, user, text)
}

// ProcessBatch supervises a burst of same-room messages in submission
// order with one snapshot pin and at most one vocabulary sync for the
// whole batch — the per-message fixed costs a busy classroom pays
// thousands of times per minute are paid once per burst. Each message
// is still assessed independently and recorded individually; the
// result slice is index-aligned with users/texts. On error the slice
// holds the assessments completed so far (nil from the failed index).
func (s *Supervisor) ProcessBatch(room string, users, texts []string) ([]*Assessment, error) {
	if len(users) != len(texts) {
		return nil, fmt.Errorf("process batch: %d users for %d texts", len(users), len(texts))
	}
	snap, err := s.pinSnapshot()
	if err != nil {
		return nil, err
	}
	out := make([]*Assessment, len(texts))
	for i := range texts {
		a, err := s.processWith(snap, room, users[i], texts[i])
		if err != nil {
			return out, err
		}
		out[i] = a
	}
	return out, nil
}

// pinSnapshot takes the per-message (or per-batch) ontology snapshot
// and, when a newer snapshot carries new course vocabulary, teaches it
// before parsing (bumping the dictionary generation and flushing the
// parse cache exactly once per publication).
func (s *Supervisor) pinSnapshot() (*ontology.Snapshot, error) {
	snap := s.onto.Snapshot()
	if snap.Version() > s.vocabVersion.Load() {
		if err := s.syncVocabulary(snap); err != nil {
			return nil, fmt.Errorf("sync vocabulary: %w", err)
		}
	}
	return snap, nil
}

func (s *Supervisor) processWith(snap *ontology.Snapshot, room, user, text string) (*Assessment, error) {
	var start time.Time
	if s.met != nil {
		start = timeNow()
	}
	tokens := linkgrammar.Tokenize(text)
	cls := sentence.Classify(tokens, linkgrammar.EndsWithQuestionMark(text))
	a := &Assessment{
		Room: room, User: user, Text: text,
		Classification: cls,
		Verdict:        corpus.VerdictCorrect,
	}
	topics := topicsOf(snap, tokens)

	if cls.Pattern.IsQuestion() {
		// Questions go to the QA subsystem; the Semantic Agent ignores
		// them per §4.3 stage 1.
		var qaStart time.Time
		if s.met != nil {
			qaStart = timeNow()
		}
		ans := s.qa.AskWith(snap, text)
		if s.met != nil {
			s.met.qaStage.ObserveSince(qaStart)
		}
		a.QAAnswer = &ans
		a.Verdict = corpus.VerdictQuestion
		if ans.Answered {
			a.Responses = append(a.Responses, chat.Response{Agent: AgentQA, Text: ans.Text})
		}
		s.record(a, tokens, topics, nil)
		if s.met != nil {
			s.met.record(a.Verdict, start)
		}
		return a, nil
	}

	var angelStart time.Time
	if s.met != nil {
		angelStart = timeNow()
	}
	rep, err := s.angel.CheckTokens(snap, text, tokens)
	if s.met != nil {
		s.met.angel.ObserveSince(angelStart)
	}
	if err != nil {
		return nil, fmt.Errorf("learning angel: %w", err)
	}
	a.Syntax = rep
	if rep.Linkage != nil {
		a.Classification = sentence.Refine(cls, rep.Linkage)
	}
	if !rep.OK {
		a.Verdict = corpus.VerdictSyntaxError
		if rep.Comment != "" {
			a.Responses = append(a.Responses, chat.Response{
				Agent: AgentAngel, Text: rep.Comment, Private: true,
			})
		}
		s.record(a, tokens, topics, rep.Tags)
		if s.met != nil {
			s.met.record(a.Verdict, start)
		}
		return a, nil
	}

	var semStart time.Time
	if s.met != nil {
		semStart = timeNow()
	}
	sem := s.semantic.AnalyzeWith(snap, a.Classification)
	if s.met != nil {
		s.met.semantic.ObserveSince(semStart)
	}
	a.Semantic = sem
	if sem.Verdict == semantic.VerdictInterrogative {
		a.Verdict = corpus.VerdictSemanticError
		text := sem.Explanation
		if sem.Suggestion != "" {
			text += " — hint: " + sem.Suggestion
		}
		a.Responses = append(a.Responses, chat.Response{
			Agent: AgentSemantic, Text: text, Private: true,
		})
	}
	s.record(a, tokens, topics, nil)
	if s.met != nil {
		s.met.record(a.Verdict, start)
	}
	return a, nil
}

// record feeds the statistic analyzer, corpora generator and profiles.
func (s *Supervisor) record(a *Assessment, tokens, topics, tags []string) {
	if !s.recorder {
		return
	}
	ev := stats.Event{
		Time:    s.now(),
		Room:    a.Room,
		User:    a.User,
		Text:    a.Text,
		Tokens:  tokens,
		Verdict: a.Verdict,
		Pattern: a.Classification.Pattern,
		Tags:    tags,
		Topics:  topics,
	}
	s.analyzer.Record(ev)
	s.gen.Consume(ev)
	s.profiles.RecordMessage(a.User, topics)
	switch a.Verdict {
	case corpus.VerdictSyntaxError:
		s.profiles.RecordSyntaxError(a.User, tags...)
	case corpus.VerdictSemanticError:
		s.profiles.RecordSemanticError(a.User, "ontology-violation")
	case corpus.VerdictQuestion:
		s.profiles.RecordQuestion(a.User)
	}
}

func topicsOf(snap *ontology.Snapshot, tokens []string) []string {
	matches := snap.ExtractTerms(tokens)
	out := make([]string, 0, len(matches))
	for _, m := range matches {
		out = append(out, m.Item.Name)
	}
	return out
}

// Recommend produces teaching-material suggestions for a learner from
// their profile (empty if the learner is unknown), expanding to
// semantically related sections through a pinned ontology snapshot.
func (s *Supervisor) Recommend(user string, limit int) []recommend.Recommendation {
	p, ok := s.profiles.Get(user)
	if !ok {
		return nil
	}
	r := recommend.New(recommend.CourseLibrary())
	return r.ForUserWith(s.onto.Snapshot(), p, limit)
}

// ChatSupervisor adapts the Supervisor to the chat.Supervisor interface;
// pipeline errors turn into (rare) silent skips rather than crashing the
// chat room. The returned value also implements chat.BatchSupervisor, so
// a server running with BatchSupervise coalesces a room's burst into one
// snapshot pin and vocabulary check.
func (s *Supervisor) ChatSupervisor() chat.Supervisor {
	return chatAdapter{s}
}

type chatAdapter struct{ s *Supervisor }

func (ad chatAdapter) Process(room, user, text string) []chat.Response {
	if IsCommand(text) {
		return ad.s.Command(room, user, text)
	}
	a, err := ad.s.Process(room, user, text)
	if err != nil {
		return nil
	}
	return a.Responses
}

// ProcessBatch implements chat.BatchSupervisor: one snapshot pin and
// vocabulary sync for the whole burst, per-message assessment and
// recording unchanged. Commands keep their place in the burst.
func (ad chatAdapter) ProcessBatch(room string, users, texts []string) [][]chat.Response {
	out := make([][]chat.Response, len(texts))
	snap, err := ad.s.pinSnapshot()
	if err != nil {
		return out
	}
	for i, text := range texts {
		if IsCommand(text) {
			out[i] = ad.s.Command(room, users[i], text)
			continue
		}
		if a, err := ad.s.processWith(snap, room, users[i], text); err == nil {
			out[i] = a.Responses
		}
	}
	return out
}
