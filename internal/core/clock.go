package core

import "time"

// timeNow is indirected for tests that need deterministic event times.
var timeNow = time.Now
