package core

import "time"

// timeNow is indirected for tests that need deterministic event times.
//
//semalint:allow injectedclock: this var IS the package's clock seam; every other core file must call timeNow()
var timeNow = time.Now
