package core

import (
	"strings"
	"testing"

	"semagent/internal/corpus"
	"semagent/internal/semantic"
)

// TestPaperSection41Examples reproduces §4.1's motivation for domain
// restriction with the paper's own two sentences:
//
//   - "The car is drinking water." — syntactically correct; the paper
//     notes that outside a restricted domain its meaning cannot be
//     judged ("in fairy tale, cars maybe can drink water"). Our system
//     must accept the syntax and have the Semantic Agent *skip* it
//     (no Data Structure ontology terms to evaluate).
//   - "The data is pushed in this heap." — syntactically correct but
//     wrong in the Data Structure course: heap has no push. The
//     Semantic Agent must flag it.
func TestPaperSection41Examples(t *testing.T) {
	s := newSupervisor(t)

	car, err := s.Process("room", "alice", "The car is drinking water.")
	if err != nil {
		t.Fatal(err)
	}
	if car.Syntax == nil || !car.Syntax.OK {
		t.Fatalf("'The car is drinking water.' must parse; report=%+v", car.Syntax)
	}
	if car.Verdict != corpus.VerdictCorrect {
		t.Errorf("out-of-domain sentence verdict = %s, want correct (not judged)", car.Verdict)
	}
	if car.Semantic == nil || car.Semantic.Verdict != semantic.VerdictSkipped {
		t.Errorf("semantic verdict = %v, want skipped (no domain terms)", car.Semantic)
	}

	heap, err := s.Process("room", "alice", "The data is pushed in this heap.")
	if err != nil {
		t.Fatal(err)
	}
	if heap.Syntax == nil || !heap.Syntax.OK {
		t.Fatalf("'The data is pushed in this heap.' must parse; report=%+v", heap.Syntax)
	}
	if heap.Verdict != corpus.VerdictSemanticError {
		t.Fatalf("verdict = %s, want semantic-error (heap has no push)", heap.Verdict)
	}
	if len(heap.Responses) == 0 || !strings.Contains(heap.Responses[0].Text, "push") {
		t.Errorf("semantic response should name push: %+v", heap.Responses)
	}
}

// TestPaperSection43Examples reproduces §4.3's two "possible
// Interrogative Sentences" verbatim.
func TestPaperSection43Examples(t *testing.T) {
	s := newSupervisor(t)

	// "I push the data into a tree." — flagged.
	a, err := s.Process("room", "bob", "I push the data into a tree.")
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != corpus.VerdictSemanticError {
		t.Errorf("'I push the data into a tree.' verdict = %s, want semantic-error", a.Verdict)
	}

	// "The tree doesn't have pop method." — the paper's exact wording
	// (no article). Accepted: unrelated pair under negation.
	b, err := s.Process("room", "bob", "The tree doesn't have pop method.")
	if err != nil {
		t.Fatal(err)
	}
	if b.Verdict != corpus.VerdictCorrect {
		t.Errorf("'The tree doesn't have pop method.' verdict = %s, want correct", b.Verdict)
	}
}

// TestPaperSection44Questions reproduces §4.4's three example questions
// verbatim, including the stack definition text the paper quotes from
// its knowledge ontology markup.
func TestPaperSection44Questions(t *testing.T) {
	s := newSupervisor(t)

	ans := s.QA().Ask("What is Stack?")
	if !ans.Answered {
		t.Fatal("'What is Stack?' unanswered")
	}
	// The paper's own markup text.
	for _, want := range []string{
		"Last In, First Out", "insertions and deletions are restricted",
		"push, pop, and stack top",
	} {
		if !strings.Contains(ans.Text, want) {
			t.Errorf("stack definition missing %q: %q", want, ans.Text)
		}
	}

	ans = s.QA().Ask("Which data structure has the method push?")
	if !ans.Answered || !strings.Contains(ans.Text, "stack") {
		t.Errorf("which-has answer = %+v", ans)
	}

	ans = s.QA().Ask("Does stack have pop method?")
	if !ans.Answered || !strings.HasPrefix(ans.Text, "Yes") {
		t.Errorf("does-have answer = %+v", ans)
	}
}

// TestPaperFigure5IDs pins the knowledge-body IDs drawn in Figure 5:
// the keywords "tree" and "pop" resolve to ids 4 and 33, and the
// system discovers they are not related.
func TestPaperFigure5IDs(t *testing.T) {
	s := newSupervisor(t)
	tree, ok := s.Ontology().Lookup("tree")
	if !ok || tree.ID != 4 {
		t.Errorf("tree id = %v, want 4", tree)
	}
	pop, ok := s.Ontology().Lookup("pop")
	if !ok || pop.ID != 33 {
		t.Errorf("pop id = %v, want 33", pop)
	}
	if s.Ontology().Related("tree", "pop", 0) {
		t.Error("tree and pop must be unrelated (Fig. 5 discussion)")
	}
}

// TestPaperFigure2Linkage pins the Fig. 2 linkage of "The cat chased a
// mouse": D(the,cat), S(cat,chased), O(chased,mouse), D(a,mouse).
func TestPaperFigure2Linkage(t *testing.T) {
	s := newSupervisor(t)
	res, err := s.Parser().Parse("The cat chased a mouse.")
	if err != nil || !res.Valid() {
		t.Fatalf("parse failed: %v", err)
	}
	best := res.Best()
	type link struct{ a, b int }
	for _, want := range []struct {
		link
		label string
	}{
		{link{1, 2}, "D"}, {link{2, 3}, "S"}, {link{3, 5}, "O"}, {link{4, 5}, "D"},
	} {
		found := false
		for _, l := range best.Links {
			if l.Left == want.a && l.Right == want.b && strings.HasPrefix(l.Label, want.label) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %s link between words %d and %d\n%s", want.label, want.a, want.b, best)
		}
	}
}
