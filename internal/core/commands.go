package core

import (
	"fmt"
	"strings"

	"semagent/internal/chat"
	"semagent/internal/recommend"
)

// IsCommand reports whether a chat line is a learner command rather
// than course discussion.
func IsCommand(text string) bool {
	return strings.HasPrefix(strings.TrimSpace(text), "/")
}

// Command handles the learner-facing slash commands that expose the
// accumulated knowledge (the paper's FAQ "learning tool", the
// statistic analyzer's view and the material recommendations):
//
//	/faq [n]        top FAQ entries
//	/recommend      teaching material for the asking learner
//	/stats          room statistics summary
//	/define <term>  the ontology definition of a term
//	/help           command list
//
// The returned responses are always private to the asking learner.
func (s *Supervisor) Command(room, user, text string) []chat.Response {
	fields := strings.Fields(strings.TrimSpace(text))
	if len(fields) == 0 {
		return nil
	}
	private := func(agent, msg string) []chat.Response {
		return []chat.Response{{Agent: agent, Text: msg, Private: true}}
	}
	switch strings.ToLower(fields[0]) {
	case "/faq":
		n := 5
		if len(fields) > 1 {
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n <= 0 {
				n = 5
			}
		}
		return private(AgentQA, s.faq.Render(n))
	case "/recommend":
		recs := s.Recommend(user, 3)
		return private(AgentSemantic, recommend.Render(recs))
	case "/stats":
		return private(AgentAngel, s.analyzer.Report())
	case "/define":
		if len(fields) < 2 {
			return private(AgentQA, "usage: /define <term>")
		}
		term := strings.Join(fields[1:], " ")
		ans := s.qa.Ask("what is " + term + "?")
		if !ans.Answered {
			return private(AgentQA, fmt.Sprintf("I have no definition for %q.", term))
		}
		return private(AgentQA, ans.Text)
	case "/help":
		return private(AgentQA, "commands: /faq [n], /recommend, /stats, /define <term>, /help")
	default:
		return private(AgentQA, fmt.Sprintf("unknown command %s — try /help", fields[0]))
	}
}
