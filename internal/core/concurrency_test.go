package core

import (
	"fmt"
	"sync"
	"testing"

	"semagent/internal/workload"
)

// TestConcurrentProcess hammers one Supervisor from many goroutines —
// the chat server does exactly this, one goroutine per connection — and
// checks that every message is accounted for exactly once.
func TestConcurrentProcess(t *testing.T) {
	s := newSupervisor(t)
	gen := workload.NewGenerator(77, s.Ontology())
	samples := gen.Generate(64, workload.DefaultMix())

	const (
		workers = 8
		rounds  = 16
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", w)
			for r := 0; r < rounds; r++ {
				text := samples[(w*rounds+r)%len(samples)].Text
				if _, err := s.Process("room", user, text); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	want := workers * rounds
	if got := s.Analyzer().Total(); got != want {
		t.Errorf("analyzer total = %d, want %d", got, want)
	}
	if got := s.Corpus().Len(); got != want {
		t.Errorf("corpus len = %d, want %d", got, want)
	}
	totalMsgs := 0
	for _, p := range s.Profiles().Snapshot() {
		totalMsgs += p.Messages
	}
	if totalMsgs != want {
		t.Errorf("profile messages = %d, want %d", totalMsgs, want)
	}
}
