package core

import (
	"fmt"
	"sync"
	"testing"

	"semagent/internal/corpus"
	"semagent/internal/ontology"
	"semagent/internal/workload"
)

// TestConcurrentProcess hammers one Supervisor from many goroutines —
// the chat server does exactly this, one goroutine per connection — and
// checks that every message is accounted for exactly once.
func TestConcurrentProcess(t *testing.T) {
	s := newSupervisor(t)
	gen := workload.NewGenerator(77, s.Ontology())
	samples := gen.Generate(64, workload.DefaultMix())

	const (
		workers = 8
		rounds  = 16
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", w)
			for r := 0; r < rounds; r++ {
				text := samples[(w*rounds+r)%len(samples)].Text
				if _, err := s.Process("room", user, text); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	want := workers * rounds
	if got := s.Analyzer().Total(); got != want {
		t.Errorf("analyzer total = %d, want %d", got, want)
	}
	if got := s.Corpus().Len(); got != want {
		t.Errorf("corpus len = %d, want %d", got, want)
	}
	totalMsgs := 0
	for _, p := range s.Profiles().Snapshot() {
		totalMsgs += p.Messages
	}
	if totalMsgs != want {
		t.Errorf("profile messages = %d, want %d", totalMsgs, want)
	}
}

// TestProcessWhileTeachingOntology mutates the live ontology — new
// terms, new relations — while pipeline-style workers call Process,
// under -race. This exercises the whole snapshot publish path end to
// end: per-message snapshot pinning, incremental vocabulary teaching
// (dictionary generation bump -> parse-cache flush), and the semantic
// stage judging every pair of a message against one snapshot.
func TestProcessWhileTeachingOntology(t *testing.T) {
	s := newSupervisor(t)
	onto := s.Ontology()

	const (
		workers = 4
		rounds  = 25
		teaches = 50
	)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; i < teaches; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("gadget%d", i)
			if _, err := onto.AddItem(name, ontology.KindConcept); err != nil {
				t.Errorf("add %s: %v", name, err)
				return
			}
			if err := onto.Relate(name, "data structure", ontology.RelIsA); err != nil {
				t.Errorf("relate %s: %v", name, err)
				return
			}
		}
	}()

	texts := []string{
		"the stack has the pop operation",
		"the tree has the pop operation",
		"what is a stack?",
		"the student learns the binary search tree",
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := s.Process("room", fmt.Sprintf("user-%d", w), texts[(w+r)%len(texts)]); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	writer.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// After the dust settles, the new vocabulary must be taught: a
	// sentence about a taught term parses and is judged semantically.
	a, err := s.Process("room", "late", "the gadget0 is a data structure")
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != corpus.VerdictCorrect {
		t.Errorf("taught-term sentence verdict = %v, want correct", a.Verdict)
	}
}
