package core

import (
	"strings"
	"testing"
)

func TestIsCommand(t *testing.T) {
	cases := map[string]bool{
		"/faq":            true,
		"  /help":         true,
		"/define stack":   true,
		"hello everyone":  false,
		"what is a /faq?": false,
		"":                false,
	}
	for text, want := range cases {
		if got := IsCommand(text); got != want {
			t.Errorf("IsCommand(%q) = %v, want %v", text, got, want)
		}
	}
}

func TestCommandFAQ(t *testing.T) {
	s := newSupervisor(t)
	if _, err := s.Process("room", "alice", "What is a stack?"); err != nil {
		t.Fatal(err)
	}
	resps := s.Command("room", "alice", "/faq 3")
	if len(resps) != 1 || !resps[0].Private {
		t.Fatalf("resps = %+v", resps)
	}
	if !strings.Contains(resps[0].Text, "stack") {
		t.Errorf("faq output = %q", resps[0].Text)
	}
}

func TestCommandDefine(t *testing.T) {
	s := newSupervisor(t)
	resps := s.Command("room", "bob", "/define binary search tree")
	if len(resps) != 1 {
		t.Fatal("no response")
	}
	if !strings.Contains(resps[0].Text, "binary search tree") {
		t.Errorf("define output = %q", resps[0].Text)
	}
	missing := s.Command("room", "bob", "/define zorkblatt")
	if !strings.Contains(missing[0].Text, "no definition") {
		t.Errorf("missing term output = %q", missing[0].Text)
	}
	usage := s.Command("room", "bob", "/define")
	if !strings.Contains(usage[0].Text, "usage") {
		t.Errorf("usage output = %q", usage[0].Text)
	}
}

func TestCommandRecommendAndStats(t *testing.T) {
	s := newSupervisor(t)
	for i := 0; i < 3; i++ {
		if _, err := s.Process("room", "carol", "I push the data into a tree."); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Command("room", "carol", "/recommend")
	if !strings.Contains(recs[0].Text, "Chapter") {
		t.Errorf("recommend output = %q", recs[0].Text)
	}
	stats := s.Command("room", "carol", "/stats")
	if !strings.Contains(stats[0].Text, "messages") {
		t.Errorf("stats output = %q", stats[0].Text)
	}
}

func TestCommandHelpAndUnknown(t *testing.T) {
	s := newSupervisor(t)
	help := s.Command("room", "dave", "/help")
	if !strings.Contains(help[0].Text, "/faq") {
		t.Errorf("help output = %q", help[0].Text)
	}
	unknown := s.Command("room", "dave", "/frobnicate")
	if !strings.Contains(unknown[0].Text, "unknown command") {
		t.Errorf("unknown output = %q", unknown[0].Text)
	}
}

func TestChatSupervisorRoutesCommands(t *testing.T) {
	s := newSupervisor(t)
	sup := s.ChatSupervisor()
	resps := sup.Process("room", "alice", "/help")
	if len(resps) != 1 || !strings.Contains(resps[0].Text, "commands:") {
		t.Errorf("adapter command routing broken: %+v", resps)
	}
	// Commands must not be recorded as dialogue.
	if s.Analyzer().Total() != 0 {
		t.Error("command was recorded as a message")
	}
}
