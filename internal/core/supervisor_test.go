package core

import (
	"strings"
	"testing"

	"semagent/internal/corpus"
	"semagent/internal/semantic"
)

func newSupervisor(t *testing.T) *Supervisor {
	t.Helper()
	s, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestCorrectSentenceFlowsSilently(t *testing.T) {
	s := newSupervisor(t)
	a, err := s.Process("room", "alice", "The stack has a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != corpus.VerdictCorrect {
		t.Errorf("verdict = %s", a.Verdict)
	}
	if len(a.Responses) != 0 {
		t.Errorf("agents should stay silent: %+v", a.Responses)
	}
	if a.Syntax == nil || !a.Syntax.OK {
		t.Error("syntax report missing or failed")
	}
	if a.Semantic == nil || a.Semantic.Verdict != semantic.VerdictOK {
		t.Errorf("semantic = %+v", a.Semantic)
	}
}

func TestSyntaxErrorTriggersAngel(t *testing.T) {
	s := newSupervisor(t)
	a, err := s.Process("room", "bob", "The stack have a push operation.")
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != corpus.VerdictSyntaxError {
		t.Fatalf("verdict = %s", a.Verdict)
	}
	if len(a.Responses) == 0 || a.Responses[0].Agent != AgentAngel {
		t.Fatalf("responses = %+v", a.Responses)
	}
	if !a.Responses[0].Private {
		t.Error("angel corrections should be private")
	}
	// Semantic stage must not run after a syntax failure.
	if a.Semantic != nil {
		t.Error("semantic agent ran on a syntactically broken sentence")
	}
}

func TestSemanticErrorTriggersSemanticAgent(t *testing.T) {
	s := newSupervisor(t)
	a, err := s.Process("room", "carol", "I push the data into a tree.")
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != corpus.VerdictSemanticError {
		t.Fatalf("verdict = %s (syntax ok=%v)", a.Verdict, a.Syntax != nil && a.Syntax.OK)
	}
	if len(a.Responses) == 0 || a.Responses[0].Agent != AgentSemantic {
		t.Fatalf("responses = %+v", a.Responses)
	}
	if !strings.Contains(a.Responses[0].Text, "hint") {
		t.Errorf("semantic response should carry a hint: %q", a.Responses[0].Text)
	}
}

func TestNegatedUnrelatedPairPasses(t *testing.T) {
	// The paper's flagship example must flow through the whole pipeline
	// without complaint.
	s := newSupervisor(t)
	a, err := s.Process("room", "dave", "The tree doesn't have a pop method.")
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != corpus.VerdictCorrect {
		t.Errorf("verdict = %s, want correct", a.Verdict)
	}
}

func TestQuestionRoutedToQA(t *testing.T) {
	s := newSupervisor(t)
	a, err := s.Process("room", "emma", "What is a stack?")
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != corpus.VerdictQuestion {
		t.Fatalf("verdict = %s", a.Verdict)
	}
	if a.QAAnswer == nil || !a.QAAnswer.Answered {
		t.Fatalf("qa answer = %+v", a.QAAnswer)
	}
	if len(a.Responses) == 0 || a.Responses[0].Agent != AgentQA {
		t.Fatalf("responses = %+v", a.Responses)
	}
	if !strings.Contains(a.Responses[0].Text, "Last In, First Out") {
		t.Errorf("answer = %q", a.Responses[0].Text)
	}
}

func TestRecordingSideEffects(t *testing.T) {
	s := newSupervisor(t)
	msgs := []string{
		"The stack has a push operation.",
		"The stack have a push operation.",
		"I push the data into a tree.",
		"What is a stack?",
	}
	for _, m := range msgs {
		if _, err := s.Process("room", "alice", m); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Corpus().Len(); got != len(msgs) {
		t.Errorf("corpus records = %d, want %d", got, len(msgs))
	}
	counts := s.Corpus().CountByVerdict()
	if counts[corpus.VerdictCorrect] != 1 || counts[corpus.VerdictSyntaxError] != 1 ||
		counts[corpus.VerdictSemanticError] != 1 || counts[corpus.VerdictQuestion] != 1 {
		t.Errorf("corpus verdicts = %v", counts)
	}
	p, ok := s.Profiles().Get("alice")
	if !ok {
		t.Fatal("profile missing")
	}
	if p.Messages != 4 || p.SyntaxErrors != 1 || p.SemanticErrors != 1 || p.Questions != 1 {
		t.Errorf("profile = %+v", p)
	}
	if s.Analyzer().Total() != 4 {
		t.Errorf("analyzer total = %d", s.Analyzer().Total())
	}
}

func TestDisableRecording(t *testing.T) {
	s, err := New(Config{DisableRecording: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process("room", "alice", "The stack has a push operation."); err != nil {
		t.Fatal(err)
	}
	if s.Corpus().Len() != 0 || s.Analyzer().Total() != 0 || s.Profiles().Len() != 0 {
		t.Error("recording happened despite DisableRecording")
	}
}

func TestFAQGrowsFromRepeatedQuestions(t *testing.T) {
	s := newSupervisor(t)
	for i := 0; i < 3; i++ {
		if _, err := s.Process("room", "bob", "What is a queue?"); err != nil {
			t.Fatal(err)
		}
	}
	entry, ok := s.FAQ().Lookup("what is a queue")
	if !ok {
		t.Fatal("faq entry missing")
	}
	if entry.Count < 3 {
		t.Errorf("faq count = %d", entry.Count)
	}
}

func TestRecommendAfterMistakes(t *testing.T) {
	s := newSupervisor(t)
	for i := 0; i < 3; i++ {
		if _, err := s.Process("room", "carol", "I push the data into a tree."); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Recommend("carol", 3)
	if len(recs) == 0 {
		t.Fatal("no recommendations after repeated mistakes")
	}
	if s.Recommend("nobody", 3) != nil {
		t.Error("unknown user should get no recommendations")
	}
}

func TestChatSupervisorAdapter(t *testing.T) {
	s := newSupervisor(t)
	sup := s.ChatSupervisor()
	resps := sup.Process("room", "alice", "What is a stack?")
	if len(resps) == 0 || resps[0].Agent != AgentQA {
		t.Errorf("adapter responses = %+v", resps)
	}
	if got := sup.Process("room", "alice", "The stack has a push operation."); len(got) != 0 {
		t.Errorf("adapter should be silent on correct sentences: %+v", got)
	}
}

func TestOntologyTermsTaughtToParser(t *testing.T) {
	s := newSupervisor(t)
	// "heapify" is an ontology term absent from the base dictionary; it
	// must parse as a domain noun after TeachOntologyTerms.
	if !s.Parser().Dictionary().Has("heapify") {
		t.Fatal("ontology term not taught to dictionary")
	}
	a, err := s.Process("room", "alice", "The heap has a heapify operation.")
	if err != nil {
		t.Fatal(err)
	}
	if a.Verdict != corpus.VerdictCorrect {
		t.Errorf("verdict = %s", a.Verdict)
	}
}

func TestSupervisorParserIsFaultTolerant(t *testing.T) {
	// Regression: a zero-valued Config.ParserOptions must yield the
	// fault-tolerant defaults, so the Learning_Angel can point at the
	// broken words instead of reporting a bare parse failure.
	s := newSupervisor(t)
	a, err := s.Process("room", "alice", "The the cat chased a mouse.")
	if err != nil {
		t.Fatal(err)
	}
	if a.Syntax == nil || a.Syntax.OK {
		t.Fatal("duplicate determiner not flagged")
	}
	if !a.Syntax.Parsed || len(a.Syntax.NullTokens) == 0 {
		t.Errorf("error not localized: parsed=%v nulls=%v", a.Syntax.Parsed, a.Syntax.NullTokens)
	}
}
