package core

import (
	"reflect"
	"testing"

	"semagent/internal/chat"
)

// TestProcessBatchMatchesProcess runs the same mixed burst through the
// per-message and batched entry points on two fresh supervisors and
// requires identical assessments — batching amortizes fixed costs, it
// must never change a verdict or a response.
func TestProcessBatchMatchesProcess(t *testing.T) {
	users := []string{"alice", "bob", "alice", "carol", "bob"}
	texts := []string{
		"The stack has a push operation.",
		"The stack have a push operation.",
		"Does the queue have a pop operation?",
		"zxqvk blorp mmmh.",
		"A binary tree is a data structure.",
	}

	single := newSupervisor(t)
	var want []*Assessment
	for i := range texts {
		a, err := single.Process("room", users[i], texts[i])
		if err != nil {
			t.Fatalf("process %d: %v", i, err)
		}
		want = append(want, a)
	}

	batched := newSupervisor(t)
	got, err := batched.ProcessBatch("room", users, texts)
	if err != nil {
		t.Fatalf("process batch: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch returned %d assessments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Verdict != want[i].Verdict {
			t.Errorf("message %d: verdict %s (batched) != %s (single)", i, got[i].Verdict, want[i].Verdict)
		}
		if !reflect.DeepEqual(got[i].Responses, want[i].Responses) {
			t.Errorf("message %d: responses diverge\nbatched: %+v\n single: %+v", i, got[i].Responses, want[i].Responses)
		}
		if got[i].Classification.Pattern != want[i].Classification.Pattern {
			t.Errorf("message %d: pattern %v != %v", i, got[i].Classification.Pattern, want[i].Classification.Pattern)
		}
	}

	// Recording must be per message in both modes.
	if s, b := single.Analyzer().Total(), batched.Analyzer().Total(); s != b || b != len(texts) {
		t.Errorf("analyzer totals: single %d, batched %d, want %d", s, b, len(texts))
	}
}

// TestProcessBatchLengthMismatch rejects misaligned inputs.
func TestProcessBatchLengthMismatch(t *testing.T) {
	s := newSupervisor(t)
	if _, err := s.ProcessBatch("room", []string{"a"}, []string{"x", "y"}); err == nil {
		t.Fatal("mismatched users/texts accepted")
	}
}

// TestChatSupervisorImplementsBatch pins the adapter's batch interface:
// the chat server's BatchSupervise mode depends on this assertion, and
// commands must keep their place inside a coalesced burst.
func TestChatSupervisorImplementsBatch(t *testing.T) {
	s := newSupervisor(t)
	bs, ok := s.ChatSupervisor().(chat.BatchSupervisor)
	if !ok {
		t.Fatal("ChatSupervisor does not implement chat.BatchSupervisor")
	}
	out := bs.ProcessBatch("room",
		[]string{"alice", "alice"},
		[]string{"/profile", "The stack has a push operation."})
	if len(out) != 2 {
		t.Fatalf("batch returned %d response sets, want 2", len(out))
	}
	if len(out[0]) == 0 {
		t.Error("command inside a batch produced no response")
	}
	if len(out[1]) != 0 {
		t.Errorf("correct sentence drew responses: %+v", out[1])
	}
}
