package memnet

import (
	"io"
	"net"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	if _, err := a.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if got := b.Pending(); got != len("hello world") {
		t.Fatalf("Pending = %d, want %d", got, len("hello world"))
	}
	buf := make([]byte, 64)
	n, err := b.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello world" {
		t.Fatalf("read %q", buf[:n])
	}
	if got := b.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d", got)
	}
}

func TestWriteNeverBlocks(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	// A megabyte with no reader: must return immediately.
	chunk := make([]byte, 4096)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 256; i++ {
			if _, err := a.Write(chunk); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("writes blocked without a reader")
	}
	if got := b.Pending(); got != 256*4096 {
		t.Fatalf("Pending = %d, want %d", got, 256*4096)
	}
}

func TestCloseGivesPeerEOFAfterDrain(t *testing.T) {
	a, b := Pipe()
	if _, err := a.Write([]byte("bye")); err != nil {
		t.Fatal(err)
	}
	_ = a.Close()
	buf := make([]byte, 8)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("drain read = %q, %v", buf[:n], err)
	}
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("post-close read err = %v, want EOF", err)
	}
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestCloseWakesBlockedRead(t *testing.T) {
	a, b := Pipe()
	errs := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := b.Read(buf)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the read block
	_ = a.Close()
	select {
	case err := <-errs:
		if err != io.EOF {
			t.Fatalf("read err = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read never woken by peer close")
	}
}

func TestReadDeadline(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	_ = b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 8)
	_, err := b.Read(buf)
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("read err = %v, want a net.Error timeout", err)
	}
	// Clearing the deadline restores blocking reads.
	_ = b.SetReadDeadline(time.Time{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		_, _ = a.Write([]byte("late"))
	}()
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "late" {
		t.Fatalf("read after deadline clear = %q, %v", buf[:n], err)
	}
}

func TestListenerDialAccept(t *testing.T) {
	l := NewListener()
	defer l.Close()

	type result struct {
		conn net.Conn
		err  error
	}
	accepted := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		accepted <- result{c, err}
	}()
	client, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	res := <-accepted
	if res.err != nil {
		t.Fatal(res.err)
	}
	defer res.conn.Close()

	if _, err := client.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := res.conn.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("server read = %q, %v", buf[:n], err)
	}
}

func TestListenerClose(t *testing.T) {
	l := NewListener()
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != net.ErrClosed {
			t.Fatalf("Accept err = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept not released by Close")
	}
	if _, err := l.Dial(); err != net.ErrClosed {
		t.Fatalf("Dial after close err = %v, want net.ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
