// Package memnet is an in-memory net transport for the scenario
// simulator (DESIGN.md D11): a Listener whose Dial hands the server a
// real net.Conn without any socket, and conn halves whose writes never
// block — each half owns an unbounded buffer its peer reads from. The
// chat server runs on it unmodified (Server.Serve accepts any
// net.Listener), whole classrooms connect in microseconds, and a closed
// peer surfaces io.EOF exactly like a dropped TCP connection.
//
// Writes being non-blocking is what makes the simulator's quiesce
// barrier sound: once the server's per-client writer goroutine has
// written a message, the bytes are immediately readable on the client
// half, so "all pending writes flushed" implies "all messages
// observable".
package memnet

import (
	"io"
	"net"
	"sync"
	"time"
)

// addr is the trivial net.Addr for in-memory endpoints.
type addr string

func (a addr) Network() string { return "mem" }
func (a addr) String() string  { return string(a) }

// Listener accepts in-memory connections created by its Dial method.
type Listener struct {
	mu     sync.Mutex
	queue  chan net.Conn
	done   chan struct{}
	closed bool
}

// NewListener returns an open listener.
func NewListener() *Listener {
	return &Listener{queue: make(chan net.Conn, 16), done: make(chan struct{})}
}

// Dial connects to the listener, returning the client half. The server
// half is delivered to Accept. The queue channel is never closed — a
// Dial racing Close resolves through the done channel instead of
// panicking on a send to a closed channel.
func (l *Listener) Dial() (net.Conn, error) {
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		// Checked up front so a sequential dial-after-close fails
		// deterministically (the select below picks at random when both
		// cases are ready).
		return nil, net.ErrClosed
	}
	client, server := Pipe()
	select {
	case l.queue <- server:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.queue:
		return conn, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close stops the listener; blocked Accepts and Dials return
// net.ErrClosed. Connections already handed out stay usable.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	close(l.done)
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return addr("memnet") }

// Pipe returns the two halves of an in-memory connection. Data written
// to one half is readable on the other. Writes never block.
func Pipe() (*Conn, *Conn) {
	a2b := newBuffer()
	b2a := newBuffer()
	a := &Conn{read: b2a, write: a2b, local: "client", remote: "server"}
	b := &Conn{read: a2b, write: b2a, local: "server", remote: "client"}
	return a, b
}

// buffer is one direction of a pipe: an unbounded byte queue with a
// cond for blocking reads and a closed flag set by either end.
type buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	data   []byte
	closed bool
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Conn is one half of an in-memory connection. It implements net.Conn.
type Conn struct {
	read          *buffer
	write         *buffer
	local, remote string

	deadlineMu   sync.Mutex
	readDeadline time.Time
}

// Read blocks until data, EOF (peer closed) or the read deadline.
func (c *Conn) Read(p []byte) (int, error) {
	c.deadlineMu.Lock()
	deadline := c.readDeadline
	c.deadlineMu.Unlock()

	var timer *time.Timer
	timedOut := false
	if !deadline.IsZero() {
		//semalint:allow injectedclock: net.Conn deadlines are wall-clock by contract; memnet mirrors the real network API
		d := time.Until(deadline)
		if d <= 0 {
			return 0, timeoutError{}
		}
		//semalint:allow injectedclock: deadline emulation fires in real time, like the kernel timer it stands in for
		timer = time.AfterFunc(d, func() {
			c.read.mu.Lock()
			timedOut = true
			c.read.mu.Unlock()
			c.read.cond.Broadcast()
		})
		defer timer.Stop()
	}

	b := c.read
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.data) == 0 && !b.closed && !timedOut {
		b.cond.Wait()
	}
	if len(b.data) == 0 {
		if b.closed {
			return 0, io.EOF
		}
		return 0, timeoutError{}
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

// Write appends to the peer's read buffer; it never blocks. Writing to
// a closed connection fails like a reset TCP socket.
func (c *Conn) Write(p []byte) (int, error) {
	b := c.write
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0, io.ErrClosedPipe
	}
	b.data = append(b.data, p...)
	b.mu.Unlock()
	b.cond.Broadcast()
	return len(p), nil
}

// Pending reports the bytes buffered for this half to read. The
// simulator uses it to drain "everything already delivered" without
// blocking for more.
func (c *Conn) Pending() int {
	c.read.mu.Lock()
	defer c.read.mu.Unlock()
	return len(c.read.data)
}

// WaitReadable blocks until at least one byte is readable or the peer
// closes, consuming nothing. The cluster gateway's relay pumps park
// here instead of inside Read so that "pump is between messages" and
// "pump is mid-transfer" are distinguishable states: a pump that has
// passed WaitReadable marks itself busy before reading, and the
// fabric's quiesce barrier counts only parked pumps as idle.
func (c *Conn) WaitReadable() {
	b := c.read
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.data) == 0 && !b.closed {
		b.cond.Wait()
	}
}

// Closed reports whether this half's read direction has been torn down
// (by either end). Once true, pending data may still drain but no new
// bytes will ever arrive.
func (c *Conn) Closed() bool {
	c.read.mu.Lock()
	defer c.read.mu.Unlock()
	return c.read.closed
}

// Close tears down both directions; the peer's blocked reads return
// io.EOF (after draining buffered data) and its writes fail.
func (c *Conn) Close() error {
	for _, b := range []*buffer{c.read, c.write} {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		b.cond.Broadcast()
	}
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return addr(c.local) }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return addr(c.remote) }

// SetDeadline implements net.Conn (read side only; writes never block).
func (c *Conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline bounds Reads started after the call. An already
// blocked Read keeps the deadline it was started with (the simulator
// and chat.Dial both set the deadline before reading, never to
// interrupt a read in flight).
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.readDeadline = t
	c.deadlineMu.Unlock()
	return nil
}

// SetWriteDeadline is a no-op: writes never block.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

// timeoutError matches net.Error for deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "memnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
