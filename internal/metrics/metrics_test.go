package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same series.
	if again := r.Counter("test_ops_total", "ops"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestCounterLabelsDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_shed_total", "shed", L("reason", "room"))
	b := r.Counter("test_shed_total", "shed", L("reason", "global"))
	if a == b {
		t.Fatal("different label sets returned the same series")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatal("label series share state")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("test_x_total", "x")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(DefDurationBounds(), 1e-9)
	// 1000 samples uniform in [1ms, 2ms): they straddle the 1.024ms
	// bound, so quantiles interpolate inside the covering buckets
	// (upper bound 2.048ms).
	for i := 0; i < 1000; i++ {
		h.ObserveDuration(time.Millisecond + time.Duration(i)*time.Microsecond)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := time.Duration(h.Quantile(q))
		if got < 512*time.Microsecond || got > 2048*time.Microsecond {
			t.Fatalf("q%.2f = %v, want within the covering buckets (512µs, 2.048ms]", q, got)
		}
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %d < p50 %d", p99, p50)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]int64{10, 100}, 1)
	h.Observe(5000) // beyond the last bound: +Inf bucket
	if got := h.Quantile(0.99); got != 100 {
		t.Fatalf("quantile from +Inf bucket = %d, want last finite bound 100", got)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(DefDurationBounds(), 1e-9)
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	h := r.DurationHistogram("test_seconds", "t")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.ObserveDuration(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestWritePrometheusValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("semagent_msgs_total", "messages", L("verdict", "correct")).Add(3)
	r.Counter("semagent_msgs_total", "messages", L("verdict", "syntax-error")).Add(1)
	r.Gauge("semagent_depth", "queue depth").Set(12)
	r.GaugeFunc("semagent_rooms", "active rooms", func() int64 { return 4 })
	h := r.DurationHistogram("semagent_stage_seconds", "stage latency", L("stage", "angel"))
	for i := 0; i < 100; i++ {
		h.ObserveDuration(time.Duration(i) * 50 * time.Microsecond)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`semagent_msgs_total{verdict="correct"} 3`,
		"semagent_depth 12",
		"semagent_rooms 4",
		`semagent_stage_seconds_bucket{stage="angel",le="+Inf"} 100`,
		"semagent_stage_seconds_count{stage=\"angel\"} 100",
		"# TYPE semagent_stage_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for name, input := range map[string]string{
		"bad name":       "2bad_name 1\n",
		"no value":       "metric_a\n",
		"bad value":      "metric_a one\n",
		"bad comment":    "# NOPE metric_a counter\n",
		"unknown type":   "# TYPE metric_a matrix\n",
		"bad label":      `metric_a{x="unterminated} 1` + "\n",
		"noncumulative":  "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
		"missing inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 7\n",
	} {
		if err := ValidateExposition(strings.NewReader(input)); err == nil {
			t.Errorf("%s: validator accepted %q", name, input)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b").Add(2)
	r.Gauge("a_depth", "a").Set(9)
	h := r.DurationHistogram("c_seconds", "c")
	h.ObserveDuration(3 * time.Millisecond)
	snap := r.Snapshot()
	if len(snap.Families) != 3 {
		t.Fatalf("families = %d, want 3", len(snap.Families))
	}
	// Sorted by name.
	for i, want := range []string{"a_depth", "b_total", "c_seconds"} {
		if snap.Families[i].Name != want {
			t.Fatalf("family[%d] = %s, want %s", i, snap.Families[i].Name, want)
		}
	}
	hs := snap.Families[2].Series[0]
	if hs.Count != 1 || hs.P50 <= 0 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	if time.Since(snap.Time) > time.Minute {
		t.Fatal("snapshot time not set")
	}
}

func TestFormatFloat(t *testing.T) {
	if got := formatFloat(3); got != "3" {
		t.Fatalf("formatFloat(3) = %q", got)
	}
	if got := formatFloat(0.000001); got != "1e-06" {
		t.Fatalf("formatFloat(1e-6) = %q", got)
	}
	if formatFloat(math.Trunc(1e16)) == "" {
		t.Fatal("large float empty")
	}
}
