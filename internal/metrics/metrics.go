// Package metrics is the zero-dependency instrumentation layer of the
// supervision service (DESIGN.md, design decision D10). The hot path —
// pipeline enqueue/dequeue, supervisor stages, chat broadcast, journal
// append — records into atomic counters, gauges and fixed-bucket
// histograms; nothing on the observation path allocates or takes a
// lock. The cold path exposes the same registry two ways: the
// Prometheus text exposition format over HTTP (WritePrometheus /
// Handler) and a structured Snapshot that the stats analyzer folds into
// the instructor report.
//
// The package deliberately reimplements the tiny subset of a metrics
// client the service needs instead of importing one: the repo's
// constraint is stdlib-only, and the subset is small — monotonic
// counters, set-point gauges (plus pull-time gauge functions for values
// like queue depth that already live in another subsystem), and latency
// histograms with fixed exponential bounds from which p50/p95/p99 are
// extracted by linear interpolation within the winning bucket.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the metric family type.
type Kind uint8

// Family kinds, matching the Prometheus type names.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String names the kind as the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing value. The zero value is ready
// to use; counters obtained from a Registry are also exported.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n (n must not be negative).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bound distribution of int64 observations. Bounds
// are cumulative upper limits; observations above the last bound land
// in the implicit +Inf bucket. Observe is lock-free and allocation-free:
// a binary search over the (immutable) bounds and three atomic adds.
type Histogram struct {
	bounds []int64        // sorted upper bounds
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Int64
	count  atomic.Int64
	// scale converts raw observed units to exposition units (duration
	// histograms observe nanoseconds and expose seconds: scale 1e-9).
	scale float64
}

// NewHistogram builds a free-standing histogram (Registries build their
// own). Bounds must be sorted ascending; scale 0 means 1.
func NewHistogram(bounds []int64, scale float64) *Histogram {
	if scale == 0 {
		scale = 1
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
		scale:  scale,
	}
}

// DefDurationBounds are the default latency bounds: 1µs to ~8.6s,
// doubling — 24 buckets covering a fast parse-cache hit through a
// badly overloaded queue.
func DefDurationBounds() []int64 {
	bounds := make([]int64, 24)
	v := int64(time.Microsecond)
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a latency sample.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the latency from start to now. It is a
// wall-clock convenience: clock-injected callers must pair their own
// clock's Now/Since with ObserveDuration instead, or virtual-time runs
// will record wall latencies.
//
//semalint:allow injectedclock: wall-clock convenience API by contract; clock-injected code uses ObserveDuration
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(int64(time.Since(start))) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations (raw units).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile extracts the q-quantile (0 < q <= 1) from the buckets by
// linear interpolation between the winning bucket's bounds; values in
// the +Inf bucket report the last finite bound (an underestimate, the
// standard conservative convention for bucketed quantiles).
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			upper := int64(math.MaxInt64)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			} else if len(h.bounds) > 0 {
				return h.bounds[len(h.bounds)-1]
			}
			lower := int64(0)
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + int64(frac*float64(upper-lower))
		}
		cum += n
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// series is one exported time series: a family member with a fixed
// label set and exactly one of the value holders.
type series struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Histogram
}

func (s *series) labelKey() string { return labelKey(s.labels) }

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// family groups all series of one metric name.
type family struct {
	name, help string
	kind       Kind
	series     []*series
	byLabel    map[string]*series
}

// Registry holds the service's metric families. Registration is
// idempotent — asking for an existing (name, labels) series returns the
// same underlying metric, so packages can declare what they need
// without coordinating — but re-registering a name with a different
// kind panics (a programming error, like a duplicate flag).
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order, for stable output
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind) *family {
	if err := checkName(name); err != nil {
		panic(err)
	}
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byLabel: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

func (f *family) get(labels []Label) (*series, bool) {
	key := labelKey(labels)
	if s := f.byLabel[key]; s != nil {
		return s, true
	}
	for _, l := range labels {
		if err := checkName(l.Name); err != nil {
			panic(err)
		}
	}
	cp := make([]Label, len(labels))
	copy(cp, labels)
	s := &series{labels: cp}
	f.byLabel[key] = s
	f.series = append(f.series, s)
	return s, false
}

// Counter registers (or returns) the counter series name{labels...}.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, KindCounter).get(labels)
	if !ok {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or returns) the gauge series name{labels...}.
// Panics if the series was registered as a GaugeFunc — the two forms
// cannot share a series, and a nil return would only crash later, far
// from the registration mistake.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, KindGauge).get(labels)
	if !ok {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("metrics: %s registered as a gauge func, requested as a gauge", name))
	}
	return s.gauge
}

// GaugeFunc registers a pull-time gauge: fn is called at scrape and
// snapshot time. Useful for values another subsystem already maintains
// (queue depth, store sizes). The first registration of a series wins;
// re-registering is a no-op — series fields are set exactly once,
// under the registry lock, before the series is visible to a scrape,
// which is what makes the lock-free scrape reads safe.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, existed := r.family(name, help, KindGauge).get(labels)
	if existed {
		if s.gaugeFn == nil {
			// A set-point gauge already owns the series; silently
			// discarding fn would leave the scrape reading a value
			// nobody updates.
			panic(fmt.Sprintf("metrics: %s registered as a gauge, requested as a gauge func", name))
		}
		return
	}
	s.gaugeFn = fn
}

// DurationHistogram registers (or returns) a latency histogram that
// observes nanoseconds and exposes seconds, with the default
// exponential bounds.
func (r *Registry) DurationHistogram(name, help string, labels ...Label) *Histogram {
	return r.HistogramWithBounds(name, help, DefDurationBounds(), 1e-9, labels...)
}

// HistogramWithBounds registers (or returns) a histogram with explicit
// bounds and exposition scale. Re-registering an existing series with
// different bounds or scale panics, like every other registration
// conflict: silently handing back the first registrant's histogram
// would bucket the new caller's observations against the wrong bounds.
func (r *Registry) HistogramWithBounds(name, help string, bounds []int64, scale float64, labels ...Label) *Histogram {
	if scale == 0 {
		scale = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, KindHistogram).get(labels)
	if !ok {
		s.hist = NewHistogram(bounds, scale)
		return s.hist
	}
	if s.hist.scale != scale || !equalBounds(s.hist.bounds, bounds) {
		panic(fmt.Sprintf("metrics: %s re-registered with different bounds or scale", name))
	}
	return s.hist
}

func equalBounds(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkName enforces the Prometheus metric/label name charset.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("metrics: empty name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid name %q", name)
		}
	}
	return nil
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label{}, labels...), extra...)
	}
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	// 9 significant digits hide the float dust of bound×scale products
	// (1000ns × 1e-9 would otherwise print 1.0000000000000002e-06).
	return fmt.Sprintf("%.9g", v)
}

// familyView is a lock-free-readable copy of one family: name, kind
// and a snapshot of the series slice. The series *pointers* stay live
// (their values are atomics, safe to read unlocked), but the slice
// itself must be copied under the registry lock — get() appends to it
// on late registrations, and scraping a slice mid-append is a race.
type familyView struct {
	name, help string
	kind       Kind
	series     []*series
}

func (r *Registry) view() []familyView {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]familyView, len(r.families))
	for i, f := range r.families {
		out[i] = familyView{name: f.name, help: f.help, kind: f.kind,
			series: append([]*series(nil), f.series...)}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one HELP and TYPE line per family,
// then every series; histograms expand to cumulative _bucket series
// with le labels plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.view() {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case KindCounter:
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", s.counter.Value())
			case KindGauge:
				v := int64(0)
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				} else if s.gauge != nil {
					v = s.gauge.Value()
				}
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", v)
			case KindHistogram:
				h := s.hist
				var cum int64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, s.labels, L("le", formatFloat(float64(bound)*h.scale)))
					fmt.Fprintf(&b, " %d\n", cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, s.labels, L("le", "+Inf"))
				fmt.Fprintf(&b, " %d\n", cum)
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %s\n", formatFloat(float64(h.Sum())*h.scale))
				// _count is the cumulative bucket total, NOT h.Count():
				// a concurrent Observe between the bucket loads above
				// and here would otherwise emit _count > +Inf bucket,
				// which the exposition format forbids.
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry at GET /metrics (any path).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// SeriesSnapshot is one series' state at snapshot time.
type SeriesSnapshot struct {
	Labels []Label
	// Value carries counters and gauges.
	Value int64
	// Count/Sum/quantiles carry histograms; quantiles are in the
	// histogram's raw units (nanoseconds for duration histograms).
	Count         int64
	Sum           int64
	P50, P95, P99 int64
}

// FamilySnapshot is one family's state at snapshot time.
type FamilySnapshot struct {
	Name, Help string
	Kind       Kind
	Series     []SeriesSnapshot
}

// Snapshot is a structured point-in-time copy of the registry, sorted
// by family name — the form the stats analyzer embeds in the
// instructor report.
type Snapshot struct {
	Time     time.Time
	Families []FamilySnapshot
}

// Snapshot captures the registry.
func (r *Registry) Snapshot() Snapshot {
	//semalint:allow injectedclock: the snapshot timestamp is operator-facing report metadata, wall-clock by design
	snap := Snapshot{Time: time.Now()}
	for _, f := range r.view() {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		for _, s := range f.series {
			ss := SeriesSnapshot{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				ss.Value = s.counter.Value()
			case KindGauge:
				if s.gaugeFn != nil {
					ss.Value = s.gaugeFn()
				} else if s.gauge != nil {
					ss.Value = s.gauge.Value()
				}
			case KindHistogram:
				ss.Count = s.hist.Count()
				ss.Sum = s.hist.Sum()
				ss.P50 = s.hist.Quantile(0.50)
				ss.P95 = s.hist.Quantile(0.95)
				ss.P99 = s.hist.Quantile(0.99)
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	sort.Slice(snap.Families, func(i, j int) bool {
		return snap.Families[i].Name < snap.Families[j].Name
	})
	return snap
}
