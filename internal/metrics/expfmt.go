package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks that r is well-formed Prometheus text
// exposition format (version 0.0.4): HELP/TYPE comments precede their
// family's samples, sample lines parse (name, optional labels, float
// value), names stay within the legal charset, histogram families carry
// cumulative monotone _bucket series ending in le="+Inf" whose count
// matches _count, and no family's samples interleave with another's.
// The test suites use it to assert the /metrics endpoint speaks real
// Prometheus, not something that merely looks like it.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	types := make(map[string]string)
	seenFamily := make(map[string]bool) // family samples already closed
	var current string                  // family whose samples we are in
	buckets := make(map[string][]float64)
	counts := make(map[string]float64)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if err := checkName(name); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				types[name] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(name, types)
		if fam != current {
			if seenFamily[fam] {
				return fmt.Errorf("line %d: samples of %s interleave with another family", lineNo, fam)
			}
			if current != "" {
				seenFamily[current] = true
			}
			current = fam
		}
		if types[fam] == "histogram" {
			key := fam + "\x00" + labelsKeyWithout(labels, "le")
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				bound, err := parseLE(le)
				if err != nil {
					return fmt.Errorf("line %d: %w", lineNo, err)
				}
				bs := buckets[key]
				if len(bs)%2 == 0 && len(bs) > 0 && bound <= bs[len(bs)-2] {
					return fmt.Errorf("line %d: le bounds not increasing", lineNo)
				}
				if n := len(bs); n > 0 && value < bs[n-1] {
					return fmt.Errorf("line %d: bucket counts not cumulative", lineNo)
				}
				buckets[key] = append(bs, bound, value)
			case strings.HasSuffix(name, "_count"):
				counts[key] = value
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Every histogram must end in +Inf and agree with its _count.
	for key, bs := range buckets {
		fam := key[:strings.IndexByte(key, '\x00')]
		if len(bs) < 2 {
			return fmt.Errorf("histogram %s: no buckets", fam)
		}
		lastBound, lastCount := bs[len(bs)-2], bs[len(bs)-1]
		if lastBound != posInf {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", fam)
		}
		if c, ok := counts[key]; ok && c != lastCount {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", fam, lastCount, c)
		}
	}
	return nil
}

var posInf = math.Inf(1)

func parseLE(le string) (float64, error) {
	if le == "+Inf" {
		return posInf, nil
	}
	return strconv.ParseFloat(le, 64)
}

// familyOf strips the histogram sample suffixes when the base name has
// a registered histogram type.
func familyOf(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// parseSample parses `name{l1="v1",...} value` (timestamp suffixes are
// not emitted by this package and are rejected).
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if err := checkName(name); err != nil {
		return "", nil, 0, err
	}
	labels = make(map[string]string)
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			lname := rest[:eq]
			if err := checkName(lname); err != nil {
				return "", nil, 0, err
			}
			rest = rest[eq+2:]
			var val strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' && j+1 < len(rest) {
					j++
					switch rest[j] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[j])
					}
					continue
				}
				if c == '"' {
					rest = rest[j+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels[lname] = val.String()
		}
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimSpace(rest)
	if strings.ContainsAny(rest, " \t") {
		return "", nil, 0, fmt.Errorf("trailing fields in %q", line)
	}
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value in %q: %w", line, err)
	}
	return name, labels, value, nil
}

// labelsKeyWithout renders labels minus one name, sorted, as a map key.
func labelsKeyWithout(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}
