package metrics

import (
	"testing"
	"time"
)

// The histogram quantile estimator interpolates linearly inside the
// winning bucket. These tests pin the arithmetic at the places it is
// easiest to get silently wrong: exact bucket boundaries, the empty
// and single-sample edge cases, and the +Inf overflow bucket.

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]int64{10, 20}, 1)
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
	if got := NewHistogram(nil, 1).Quantile(0.5); got != 0 {
		t.Errorf("empty boundless histogram Quantile(0.5) = %d, want 0", got)
	}
}

func TestQuantileSingleSample(t *testing.T) {
	// One sample in the (10, 20] bucket: the estimator knows only the
	// bucket, so the estimate interpolates across it — q of the way
	// from the lower to the upper bound.
	h := NewHistogram([]int64{10, 20, 40}, 1)
	h.Observe(15)
	cases := []struct {
		q    float64
		want int64
	}{
		{0.5, 15},  // 10 + 0.5*10
		{0.95, 19}, // 10 + 0.95*10, truncated
		{0.99, 19},
		{1, 20}, // the full bucket width: its upper bound
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("single-sample Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestQuantileAtBucketBoundary(t *testing.T) {
	// 50 samples in (0, 100], 50 in (100, 200]: the median rank lands
	// exactly on the last sample of the first bucket, so p50 must be
	// exactly the shared boundary — not a value from either side.
	h := NewHistogram([]int64{100, 200, 300}, 1)
	for i := 0; i < 50; i++ {
		h.Observe(50)
		h.Observe(150)
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("p50 at bucket boundary = %d, want 100", got)
	}
	// Ranks inside the second bucket interpolate within (100, 200]:
	// p95 -> rank 95, 45 of the second bucket's 50 -> 100 + 0.9*100.
	if got := h.Quantile(0.95); got != 190 {
		t.Errorf("p95 = %d, want 190", got)
	}
	// p99 -> rank 99, frac 49/50 -> 198.
	if got := h.Quantile(0.99); got != 198 {
		t.Errorf("p99 = %d, want 198", got)
	}
	if got := h.Quantile(1); got != 200 {
		t.Errorf("p100 = %d, want 200", got)
	}
}

func TestQuantileFirstBucketInterpolatesFromZero(t *testing.T) {
	// All mass in the first bucket: interpolation runs from 0, not from
	// the first bound.
	h := NewHistogram([]int64{100, 200}, 1)
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 all-first-bucket = %d, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("p99 all-first-bucket = %d, want 99", got)
	}
}

func TestQuantileOverflowBucketClamps(t *testing.T) {
	// Samples beyond the last bound land in the +Inf bucket; quantiles
	// there report the last finite bound (the documented conservative
	// underestimate) rather than inventing an unbounded value.
	h := NewHistogram([]int64{10, 20}, 1)
	h.Observe(5)
	h.Observe(1_000_000)
	h.Observe(2_000_000)
	for _, q := range []float64{0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 20 {
			t.Errorf("overflow-bucket Quantile(%v) = %d, want last bound 20", q, got)
		}
	}
	// A quantile whose rank stays in a finite bucket is unaffected by
	// the overflow mass.
	if got := h.Quantile(0.3); got > 10 {
		t.Errorf("p30 = %d, want within the first bucket (<= 10)", got)
	}
}

func TestQuantileDurationBounds(t *testing.T) {
	// The default latency bounds are doubling powers of 2 microseconds;
	// a uniform ramp across one bucket must land its percentiles inside
	// that bucket's bounds.
	h := NewHistogram(DefDurationBounds(), 1e-9)
	lower, upper := 512*time.Microsecond, 1024*time.Microsecond
	for d := lower + time.Microsecond; d <= upper; d += time.Microsecond {
		h.ObserveDuration(d)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := time.Duration(h.Quantile(q))
		if got <= lower || got > upper {
			t.Errorf("Quantile(%v) = %v, want within (%v, %v]", q, got, lower, upper)
		}
	}
	if p50 := time.Duration(h.Quantile(0.5)); p50 < 700*time.Microsecond || p50 > 800*time.Microsecond {
		t.Errorf("p50 of uniform (512us, 1024us] ramp = %v, want ~768us (mid-bucket)", p50)
	}
}
