package corpus

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"semagent/internal/linkgrammar"
)

func record(text string, verdict Verdict, topics ...string) Record {
	return Record{
		Text:    text,
		Tokens:  linkgrammar.Tokenize(text),
		Verdict: verdict,
		Topics:  topics,
	}
}

func TestAddAndLookup(t *testing.T) {
	s := NewStore()
	id := s.Add(record("The stack has a push operation.", VerdictCorrect, "stack", "push"))
	if id != 1 {
		t.Fatalf("first id = %d, want 1", id)
	}
	got, ok := s.ByID(id)
	if !ok {
		t.Fatal("record not found by id")
	}
	if got.Text != "The stack has a push operation." {
		t.Errorf("text = %q", got.Text)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	if _, ok := s.ByID(999); ok {
		t.Error("missing id should not be found")
	}
}

func TestSuggestPrefersSimilarCorrectSentences(t *testing.T) {
	s := NewStore()
	s.Add(record("The stack has a push operation.", VerdictCorrect, "stack", "push"))
	s.Add(record("A queue is a fifo structure.", VerdictCorrect, "queue", "fifo"))
	s.Add(record("The stack have a push operation.", VerdictSyntaxError, "stack", "push"))
	s.Add(record("Trees have many nodes.", VerdictCorrect, "tree", "node"))

	query := linkgrammar.Tokenize("the stack have push operation")
	got := s.Suggest(query, []string{"stack", "push"}, 2)
	if len(got) == 0 {
		t.Fatal("no suggestions")
	}
	if !strings.Contains(got[0].Record.Text, "stack has a push") {
		t.Errorf("top suggestion = %q, want the correct stack/push sentence", got[0].Record.Text)
	}
	for _, sg := range got {
		if sg.Record.Verdict != VerdictCorrect {
			t.Errorf("suggestion with verdict %s leaked through", sg.Record.Verdict)
		}
	}
}

func TestSuggestEmptyQueryAndLimit(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Add(record(fmt.Sprintf("The stack has operation number %d.", i), VerdictCorrect, "stack"))
	}
	if got := s.Suggest(nil, nil, 3); got != nil {
		t.Errorf("nil query should give nil suggestions, got %d", len(got))
	}
	got := s.Suggest(linkgrammar.Tokenize("stack operation"), nil, 3)
	if len(got) > 3 {
		t.Errorf("limit ignored: %d suggestions", len(got))
	}
}

func TestCountByVerdict(t *testing.T) {
	s := NewStore()
	s.Add(record("a", VerdictCorrect))
	s.Add(record("b", VerdictCorrect))
	s.Add(record("c", VerdictSyntaxError))
	s.Add(record("d", VerdictSemanticError))
	s.Add(record("e", VerdictQuestion))
	counts := s.CountByVerdict()
	if counts[VerdictCorrect] != 2 || counts[VerdictSyntaxError] != 1 ||
		counts[VerdictSemanticError] != 1 || counts[VerdictQuestion] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestByTopic(t *testing.T) {
	s := NewStore()
	s.Add(record("The stack has push.", VerdictCorrect, "stack", "push"))
	s.Add(record("The queue has enqueue.", VerdictCorrect, "queue", "enqueue"))
	got := s.ByTopic("stack")
	if len(got) != 1 || !strings.Contains(got[0].Text, "stack") {
		t.Errorf("ByTopic(stack) = %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(record("The stack has a push operation.", VerdictCorrect, "stack", "push"))
	r := record("Cat the chased mouse.", VerdictSyntaxError)
	r.ErrorTokens = []int{0, 1}
	r.Tags = []string{"word-order"}
	s.Add(r)

	var buf bytes.Buffer
	if err := s.SaveJSONL(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadJSONL(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip lost records: %d -> %d", s.Len(), back.Len())
	}
	got, ok := back.ByID(2)
	if !ok {
		t.Fatal("record 2 missing after round trip")
	}
	if len(got.ErrorTokens) != 2 || got.Tags[0] != "word-order" {
		t.Errorf("record 2 fields lost: %+v", got)
	}
	// IDs keep incrementing after a load.
	id := back.Add(record("new", VerdictCorrect))
	if id != 3 {
		t.Errorf("next id after load = %d, want 3", id)
	}
}

func TestRecordIsolation(t *testing.T) {
	s := NewStore()
	src := record("The stack has push.", VerdictCorrect, "stack")
	id := s.Add(src)
	src.Topics[0] = "mutated"
	got, _ := s.ByID(id)
	if got.Topics[0] != "stack" {
		t.Error("store shares slice memory with caller")
	}
}

func TestSuggestScoreMonotonicProperty(t *testing.T) {
	// Property: a stored sentence identical to the query always scores
	// at least as high as any other suggestion.
	f := func(words []uint8) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > 8 {
			words = words[:8]
		}
		tokens := make([]string, len(words))
		for i, w := range words {
			tokens[i] = fmt.Sprintf("word%d", w%16)
		}
		s := NewStore()
		s.Add(Record{Text: strings.Join(tokens, " "), Tokens: tokens, Verdict: VerdictCorrect})
		s.Add(Record{Text: "unrelated filler sentence", Tokens: []string{"unrelated", "filler", "sentence"}, Verdict: VerdictCorrect})
		got := s.Suggest(tokens, nil, 2)
		if len(got) == 0 {
			return true
		}
		return got[0].Record.ID == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
