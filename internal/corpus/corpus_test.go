package corpus

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"semagent/internal/linkgrammar"
)

func record(text string, verdict Verdict, topics ...string) Record {
	return Record{
		Text:    text,
		Tokens:  linkgrammar.Tokenize(text),
		Verdict: verdict,
		Topics:  topics,
	}
}

func TestAddAndLookup(t *testing.T) {
	s := NewStore()
	id := s.Add(record("The stack has a push operation.", VerdictCorrect, "stack", "push"))
	if id != 1 {
		t.Fatalf("first id = %d, want 1", id)
	}
	got, ok := s.ByID(id)
	if !ok {
		t.Fatal("record not found by id")
	}
	if got.Text != "The stack has a push operation." {
		t.Errorf("text = %q", got.Text)
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	if _, ok := s.ByID(999); ok {
		t.Error("missing id should not be found")
	}
}

func TestSuggestPrefersSimilarCorrectSentences(t *testing.T) {
	s := NewStore()
	s.Add(record("The stack has a push operation.", VerdictCorrect, "stack", "push"))
	s.Add(record("A queue is a fifo structure.", VerdictCorrect, "queue", "fifo"))
	s.Add(record("The stack have a push operation.", VerdictSyntaxError, "stack", "push"))
	s.Add(record("Trees have many nodes.", VerdictCorrect, "tree", "node"))

	query := linkgrammar.Tokenize("the stack have push operation")
	got := s.Suggest(query, []string{"stack", "push"}, 2)
	if len(got) == 0 {
		t.Fatal("no suggestions")
	}
	if !strings.Contains(got[0].Record.Text, "stack has a push") {
		t.Errorf("top suggestion = %q, want the correct stack/push sentence", got[0].Record.Text)
	}
	for _, sg := range got {
		if sg.Record.Verdict != VerdictCorrect {
			t.Errorf("suggestion with verdict %s leaked through", sg.Record.Verdict)
		}
	}
}

func TestSuggestEmptyQueryAndLimit(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Add(record(fmt.Sprintf("The stack has operation number %d.", i), VerdictCorrect, "stack"))
	}
	if got := s.Suggest(nil, nil, 3); got != nil {
		t.Errorf("nil query should give nil suggestions, got %d", len(got))
	}
	got := s.Suggest(linkgrammar.Tokenize("stack operation"), nil, 3)
	if len(got) > 3 {
		t.Errorf("limit ignored: %d suggestions", len(got))
	}
}

func TestCountByVerdict(t *testing.T) {
	s := NewStore()
	s.Add(record("a", VerdictCorrect))
	s.Add(record("b", VerdictCorrect))
	s.Add(record("c", VerdictSyntaxError))
	s.Add(record("d", VerdictSemanticError))
	s.Add(record("e", VerdictQuestion))
	counts := s.CountByVerdict()
	if counts[VerdictCorrect] != 2 || counts[VerdictSyntaxError] != 1 ||
		counts[VerdictSemanticError] != 1 || counts[VerdictQuestion] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestByTopic(t *testing.T) {
	s := NewStore()
	s.Add(record("The stack has push.", VerdictCorrect, "stack", "push"))
	s.Add(record("The queue has enqueue.", VerdictCorrect, "queue", "enqueue"))
	got := s.ByTopic("stack")
	if len(got) != 1 || !strings.Contains(got[0].Text, "stack") {
		t.Errorf("ByTopic(stack) = %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(record("The stack has a push operation.", VerdictCorrect, "stack", "push"))
	r := record("Cat the chased mouse.", VerdictSyntaxError)
	r.ErrorTokens = []int{0, 1}
	r.Tags = []string{"word-order"}
	s.Add(r)

	var buf bytes.Buffer
	if err := s.SaveJSONL(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadJSONL(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("round trip lost records: %d -> %d", s.Len(), back.Len())
	}
	got, ok := back.ByID(2)
	if !ok {
		t.Fatal("record 2 missing after round trip")
	}
	if len(got.ErrorTokens) != 2 || got.Tags[0] != "word-order" {
		t.Errorf("record 2 fields lost: %+v", got)
	}
	// IDs keep incrementing after a load.
	id := back.Add(record("new", VerdictCorrect))
	if id != 3 {
		t.Errorf("next id after load = %d, want 3", id)
	}
}

func TestRecordIsolation(t *testing.T) {
	s := NewStore()
	src := record("The stack has push.", VerdictCorrect, "stack")
	id := s.Add(src)
	src.Topics[0] = "mutated"
	got, _ := s.ByID(id)
	if got.Topics[0] != "stack" {
		t.Error("store shares slice memory with caller")
	}
}

func TestSuggestScoreMonotonicProperty(t *testing.T) {
	// Property: a stored sentence identical to the query always scores
	// at least as high as any other suggestion.
	f := func(words []uint8) bool {
		if len(words) == 0 {
			return true
		}
		if len(words) > 8 {
			words = words[:8]
		}
		tokens := make([]string, len(words))
		for i, w := range words {
			tokens[i] = fmt.Sprintf("word%d", w%16)
		}
		s := NewStore()
		s.Add(Record{Text: strings.Join(tokens, " "), Tokens: tokens, Verdict: VerdictCorrect})
		s.Add(Record{Text: "unrelated filler sentence", Tokens: []string{"unrelated", "filler", "sentence"}, Verdict: VerdictCorrect})
		got := s.Suggest(tokens, nil, 2)
		if len(got) == 0 {
			return true
		}
		return got[0].Record.ID == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLoadJSONLDuplicateIDsLastWriteWins(t *testing.T) {
	// A journal replayed over a checkpoint can legitimately rewrite a
	// record; the loader must dedupe by ID, keeping the last version.
	in := strings.Join([]string{
		`{"id":1,"text":"the stack has push","tokens":["the","stack","has","push"],"verdict":1}`,
		`{"id":2,"text":"the queue has enqueue","tokens":["the","queue","has","enqueue"],"verdict":1}`,
		`{"id":1,"text":"the stack has pop","tokens":["the","stack","has","pop"],"verdict":1}`,
	}, "\n")
	s, err := LoadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 2 {
		t.Errorf("Len = %d, want 2 (dup ID must not double-count)", got)
	}
	if got := len(s.All()); got != 2 {
		t.Errorf("len(All) = %d, want 2", got)
	}
	if got := s.CountByVerdict()[VerdictCorrect]; got != 2 {
		t.Errorf("CountByVerdict[correct] = %d, want 2", got)
	}
	r, ok := s.ByID(1)
	if !ok || r.Text != "the stack has pop" {
		t.Errorf("ByID(1).Text = %q, want the last version", r.Text)
	}
	// The inverted index must drop the replaced tokens: "push" belongs
	// to no live record any more.
	if got := s.Suggest([]string{"push"}, nil, 5); len(got) != 0 {
		t.Errorf("Suggest(push) = %d hits, want 0 (stale index entry)", len(got))
	}
	if got := s.Suggest([]string{"pop"}, nil, 5); len(got) != 1 {
		t.Errorf("Suggest(pop) = %d hits, want 1", len(got))
	}
	// The next Add must not collide with a loaded ID.
	if id := s.Add(Record{Text: "new", Tokens: []string{"new"}}); id != 3 {
		t.Errorf("next ID = %d, want 3", id)
	}
}

func TestPutReplacesAndReindexes(t *testing.T) {
	s := NewStore()
	s.Add(Record{Text: "the stack has push", Tokens: []string{"the", "stack", "has", "push"}, Verdict: VerdictCorrect})
	s.Put(Record{ID: 1, Text: "the tree has insert", Tokens: []string{"the", "tree", "has", "insert"}, Verdict: VerdictCorrect})
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	if got := s.Suggest([]string{"stack"}, nil, 5); len(got) != 0 {
		t.Errorf("old tokens still indexed: %d hits", len(got))
	}
	if got := s.Suggest([]string{"tree"}, nil, 5); len(got) != 1 {
		t.Errorf("new tokens not indexed: %d hits", len(got))
	}
}

func TestSaveLoadJournalLSNRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(Record{Text: "the stack has push", Tokens: []string{"the", "stack", "has", "push"}, Verdict: VerdictCorrect})
	s.SetJournalLSN(42)
	var buf strings.Builder
	if err := s.SaveJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.JournalLSN(); got != 42 {
		t.Errorf("JournalLSN = %d, want 42", got)
	}
	if got := loaded.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
}

func TestAddObserverAdvancesLSN(t *testing.T) {
	s := NewStore()
	var seen []Record
	var next uint64
	s.SetObserver(func(r Record) uint64 {
		seen = append(seen, r)
		next++
		return next
	})
	s.Add(Record{Text: "a", Tokens: []string{"a"}})
	s.Add(Record{Text: "b", Tokens: []string{"b"}})
	if len(seen) != 2 || seen[0].ID != 1 || seen[1].ID != 2 {
		t.Fatalf("observer saw %+v, want records with IDs 1,2", seen)
	}
	if got := s.JournalLSN(); got != 2 {
		t.Errorf("JournalLSN = %d, want 2", got)
	}
}
