// Package corpus implements the Learner Corpus database of the paper:
// every supervised utterance is recorded with its verdict and tags, and
// the store answers the Learning_Angel's "suitable sentence" queries —
// given a broken sentence, retrieve similar correct sentences to show
// the learner.
package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"semagent/internal/sentence"
)

// Verdict classifies a recorded utterance.
type Verdict int8

// Verdicts attached to corpus records.
const (
	VerdictUnknown       Verdict = iota // not yet assessed
	VerdictCorrect                      // parsed and semantically plausible
	VerdictSyntaxError                  // rejected by the Learning_Angel
	VerdictSemanticError                // the paper's "Interrogative Sentence"
	VerdictQuestion                     // routed to the QA system
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictCorrect:
		return "correct"
	case VerdictSyntaxError:
		return "syntax-error"
	case VerdictSemanticError:
		return "semantic-error"
	case VerdictQuestion:
		return "question"
	default:
		return "unknown"
	}
}

// Record is one corpus entry.
type Record struct {
	ID      int64     `json:"id"`
	Time    time.Time `json:"time"`
	Room    string    `json:"room,omitempty"`
	User    string    `json:"user,omitempty"`
	Text    string    `json:"text"`
	Tokens  []string  `json:"tokens"`
	Verdict Verdict   `json:"verdict"`
	// ErrorTokens indexes Tokens the parser had to skip (grammar-error
	// locations).
	ErrorTokens []int `json:"errorTokens,omitempty"`
	// Topics are the ontology terms mentioned.
	Topics []string `json:"topics,omitempty"`
	// Tags carries free-form labels ("agreement", "determiner", ...).
	Tags []string `json:"tags,omitempty"`

	// contentLen caches len(uniqueContentTokens(Tokens)), computed when
	// the record is indexed. Suggest's Jaccard union needs only the
	// count, so candidates are scored without re-tokenizing the record.
	contentLen int
}

// Observer is the write-ahead-log hook: it receives every mutation
// (the final record, ID assigned) and returns the log sequence number
// the mutation was journaled under. It is invoked while the store lock
// is held, so the store's state and its JournalLSN always move
// together — the durability subsystem (internal/journal) relies on
// that atomicity to take exact checkpoints. A nil observer disables
// journaling.
type Observer func(Record) uint64

// Store is the in-memory learner corpus with an inverted token index.
type Store struct {
	mu      sync.RWMutex
	records []*Record
	byToken map[string][]int64 // content token -> record IDs
	byID    map[int64]*Record
	nextID  int64

	// observer and lsn implement the journal hook: lsn is the highest
	// WAL sequence number reflected in the store's state, persisted by
	// SaveJSONL and used on recovery to skip already-applied records.
	observer Observer
	lsn      uint64
}

// SetObserver installs the journal hook (nil to detach).
func (s *Store) SetObserver(fn Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// JournalLSN returns the highest WAL sequence number reflected in the
// store's state (0 when the store has never been journaled).
func (s *Store) JournalLSN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lsn
}

// SetJournalLSN records the WAL position the state corresponds to
// (used by recovery after replaying the journal).
func (s *Store) SetJournalLSN(v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lsn = v
}

// NewStore returns an empty corpus.
func NewStore() *Store {
	return &Store{
		byToken: make(map[string][]int64),
		byID:    make(map[int64]*Record),
		nextID:  1,
	}
}

// Add records an utterance and returns its assigned ID. The record is
// copied; the caller keeps ownership of its argument.
func (s *Store) Add(r Record) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.ID = s.nextID
	s.nextID++
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	rec := r
	rec.Tokens = append([]string(nil), r.Tokens...)
	rec.ErrorTokens = append([]int(nil), r.ErrorTokens...)
	rec.Topics = append([]string(nil), r.Topics...)
	rec.Tags = append([]string(nil), r.Tags...)
	s.records = append(s.records, &rec)
	s.byID[rec.ID] = &rec
	content := uniqueContentTokens(rec.Tokens)
	rec.contentLen = len(content)
	for _, t := range content {
		s.byToken[t] = append(s.byToken[t], rec.ID)
	}
	if s.observer != nil {
		s.lsn = s.observer(rec)
	}
	return rec.ID
}

// Put inserts a record under its explicit ID, replacing any existing
// record with that ID (last write wins). It is the journal-replay
// counterpart of Add: IDs come from the log, not the store's counter,
// and the observer is not notified.
func (s *Store) Put(r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putLocked(r)
}

func (s *Store) putLocked(r Record) {
	stored := r
	stored.Tokens = append([]string(nil), r.Tokens...)
	stored.ErrorTokens = append([]int(nil), r.ErrorTokens...)
	stored.Topics = append([]string(nil), r.Topics...)
	stored.Tags = append([]string(nil), r.Tags...)
	if old, ok := s.byID[stored.ID]; ok {
		// Replace in place: drop the old token postings, overwrite the
		// shared record (records slice and byID point at the same
		// *Record), and index the new tokens.
		for _, t := range uniqueContentTokens(old.Tokens) {
			ids := s.byToken[t]
			keep := ids[:0]
			for _, id := range ids {
				if id != old.ID {
					keep = append(keep, id)
				}
			}
			if len(keep) == 0 {
				delete(s.byToken, t)
			} else {
				s.byToken[t] = keep
			}
		}
		*old = stored
	} else {
		s.records = append(s.records, &stored)
		s.byID[stored.ID] = &stored
	}
	rec := s.byID[stored.ID]
	content := uniqueContentTokens(rec.Tokens)
	rec.contentLen = len(content)
	for _, t := range content {
		s.byToken[t] = append(s.byToken[t], rec.ID)
	}
	if rec.ID >= s.nextID {
		s.nextID = rec.ID + 1
	}
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// ByID returns a copy of the record with the given ID.
func (s *Store) ByID(id int64) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.byID[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// All returns copies of every record in insertion order.
func (s *Store) All() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, len(s.records))
	for i, r := range s.records {
		out[i] = *r
	}
	return out
}

// CountByVerdict aggregates record counts per verdict.
func (s *Store) CountByVerdict() map[Verdict]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Verdict]int)
	for _, r := range s.records {
		out[r.Verdict]++
	}
	return out
}

// Suggestion is a corpus sentence offered to a learner.
type Suggestion struct {
	Record Record
	Score  float64
}

// Suggest returns up to limit correct corpus sentences similar to the
// given tokens, best first. Similarity is a weighted Jaccard overlap of
// content tokens with a bonus for shared ontology topics — the
// "search for the suitable sentences from Learner Corpus" step of the
// paper's Figure 4.
func (s *Store) Suggest(tokens []string, topics []string, limit int) []Suggestion {
	if limit <= 0 {
		limit = 3
	}
	query := uniqueContentTokens(tokens)
	if len(query) == 0 {
		return nil
	}
	topicSet := make(map[string]bool, len(topics))
	for _, t := range topics {
		topicSet[t] = true
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	// Gather candidates via the inverted index.
	hits := make(map[int64]int)
	for _, t := range query {
		for _, id := range s.byToken[t] {
			hits[id]++
		}
	}
	// Score candidates by ID + cached content-token count only; the
	// full Record is copied just for the winners below, so a query
	// against a large corpus stays O(candidates) small allocations
	// instead of re-tokenizing and copying every matching record.
	type scored struct {
		id    int64
		score float64
	}
	cands := make([]scored, 0, len(hits))
	for id, shared := range hits {
		r := s.byID[id]
		if r.Verdict != VerdictCorrect {
			continue
		}
		union := r.contentLen + len(query) - shared
		if union <= 0 {
			continue
		}
		score := float64(shared) / float64(union)
		for _, topic := range r.Topics {
			if topicSet[topic] {
				score += 0.25
			}
		}
		cands = append(cands, scored{id: id, score: score})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	if len(cands) == 0 {
		return nil
	}
	out := make([]Suggestion, len(cands))
	for i, c := range cands {
		out[i] = Suggestion{Record: *s.byID[c.id], Score: c.score}
	}
	return out
}

// ByTopic returns copies of records mentioning the given ontology term.
func (s *Store) ByTopic(topic string) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, r := range s.records {
		for _, t := range r.Topics {
			if t == topic {
				out = append(out, *r)
				break
			}
		}
	}
	return out
}

// jsonlHeader is the optional first line of a journaled JSONL store
// file, recording the WAL position the snapshot corresponds to.
type jsonlHeader struct {
	JournalLSN uint64 `json:"journalLSN"`
}

// jsonlHeaderPrefix distinguishes the header from record lines (records
// never start with this key).
const jsonlHeaderPrefix = `{"journalLSN":`

// SaveJSONL writes the corpus as JSON lines. When the store has been
// journaled, a header line records the WAL position the snapshot
// covers; loaders without journaling simply skip it.
func (s *Store) SaveJSONL(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if s.lsn > 0 {
		if err := enc.Encode(jsonlHeader{JournalLSN: s.lsn}); err != nil {
			return fmt.Errorf("encode corpus header: %w", err)
		}
	}
	for _, r := range s.records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("encode corpus record %d: %w", r.ID, err)
		}
	}
	return bw.Flush()
}

// LoadJSONL reads JSON lines into a fresh store, preserving record IDs.
// Duplicate IDs resolve last-write-wins (a journal replayed over a
// checkpoint may legitimately rewrite a record), so Len/All/
// CountByVerdict never double-count.
func LoadJSONL(r io.Reader) (*Store, error) {
	s := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, jsonlHeaderPrefix) {
			var h jsonlHeader
			if err := json.Unmarshal([]byte(text), &h); err != nil {
				return nil, fmt.Errorf("corpus header line %d: %w", line, err)
			}
			s.lsn = h.JournalLSN
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("corpus line %d: %w", line, err)
		}
		s.putLocked(rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read corpus: %w", err)
	}
	return s, nil
}

func uniqueContentTokens(tokens []string) []string {
	seen := make(map[string]bool, len(tokens))
	out := make([]string, 0, len(tokens))
	for _, t := range sentence.ContentTokens(tokens) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
