// Package corpus implements the Learner Corpus database of the paper:
// every supervised utterance is recorded with its verdict and tags, and
// the store answers the Learning_Angel's "suitable sentence" queries —
// given a broken sentence, retrieve similar correct sentences to show
// the learner.
package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"semagent/internal/sentence"
)

// Verdict classifies a recorded utterance.
type Verdict int8

// Verdicts attached to corpus records.
const (
	VerdictUnknown       Verdict = iota // not yet assessed
	VerdictCorrect                      // parsed and semantically plausible
	VerdictSyntaxError                  // rejected by the Learning_Angel
	VerdictSemanticError                // the paper's "Interrogative Sentence"
	VerdictQuestion                     // routed to the QA system
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictCorrect:
		return "correct"
	case VerdictSyntaxError:
		return "syntax-error"
	case VerdictSemanticError:
		return "semantic-error"
	case VerdictQuestion:
		return "question"
	default:
		return "unknown"
	}
}

// Record is one corpus entry.
type Record struct {
	ID      int64     `json:"id"`
	Time    time.Time `json:"time"`
	Room    string    `json:"room,omitempty"`
	User    string    `json:"user,omitempty"`
	Text    string    `json:"text"`
	Tokens  []string  `json:"tokens"`
	Verdict Verdict   `json:"verdict"`
	// ErrorTokens indexes Tokens the parser had to skip (grammar-error
	// locations).
	ErrorTokens []int `json:"errorTokens,omitempty"`
	// Topics are the ontology terms mentioned.
	Topics []string `json:"topics,omitempty"`
	// Tags carries free-form labels ("agreement", "determiner", ...).
	Tags []string `json:"tags,omitempty"`
}

// Store is the in-memory learner corpus with an inverted token index.
type Store struct {
	mu      sync.RWMutex
	records []*Record
	byToken map[string][]int64 // content token -> record IDs
	byID    map[int64]*Record
	nextID  int64
}

// NewStore returns an empty corpus.
func NewStore() *Store {
	return &Store{
		byToken: make(map[string][]int64),
		byID:    make(map[int64]*Record),
		nextID:  1,
	}
}

// Add records an utterance and returns its assigned ID. The record is
// copied; the caller keeps ownership of its argument.
func (s *Store) Add(r Record) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.ID = s.nextID
	s.nextID++
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	rec := r
	rec.Tokens = append([]string(nil), r.Tokens...)
	rec.ErrorTokens = append([]int(nil), r.ErrorTokens...)
	rec.Topics = append([]string(nil), r.Topics...)
	rec.Tags = append([]string(nil), r.Tags...)
	s.records = append(s.records, &rec)
	s.byID[rec.ID] = &rec
	for _, t := range uniqueContentTokens(rec.Tokens) {
		s.byToken[t] = append(s.byToken[t], rec.ID)
	}
	return rec.ID
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// ByID returns a copy of the record with the given ID.
func (s *Store) ByID(id int64) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.byID[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// All returns copies of every record in insertion order.
func (s *Store) All() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Record, len(s.records))
	for i, r := range s.records {
		out[i] = *r
	}
	return out
}

// CountByVerdict aggregates record counts per verdict.
func (s *Store) CountByVerdict() map[Verdict]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[Verdict]int)
	for _, r := range s.records {
		out[r.Verdict]++
	}
	return out
}

// Suggestion is a corpus sentence offered to a learner.
type Suggestion struct {
	Record Record
	Score  float64
}

// Suggest returns up to limit correct corpus sentences similar to the
// given tokens, best first. Similarity is a weighted Jaccard overlap of
// content tokens with a bonus for shared ontology topics — the
// "search for the suitable sentences from Learner Corpus" step of the
// paper's Figure 4.
func (s *Store) Suggest(tokens []string, topics []string, limit int) []Suggestion {
	if limit <= 0 {
		limit = 3
	}
	query := uniqueContentTokens(tokens)
	if len(query) == 0 {
		return nil
	}
	topicSet := make(map[string]bool, len(topics))
	for _, t := range topics {
		topicSet[t] = true
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	// Gather candidates via the inverted index.
	hits := make(map[int64]int)
	for _, t := range query {
		for _, id := range s.byToken[t] {
			hits[id]++
		}
	}
	var out []Suggestion
	for id, shared := range hits {
		r := s.byID[id]
		if r.Verdict != VerdictCorrect {
			continue
		}
		candTokens := uniqueContentTokens(r.Tokens)
		union := len(candTokens) + len(query) - shared
		if union <= 0 {
			continue
		}
		score := float64(shared) / float64(union)
		for _, topic := range r.Topics {
			if topicSet[topic] {
				score += 0.25
			}
		}
		out = append(out, Suggestion{Record: *r, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Record.ID < out[j].Record.ID
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// ByTopic returns copies of records mentioning the given ontology term.
func (s *Store) ByTopic(topic string) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, r := range s.records {
		for _, t := range r.Topics {
			if t == topic {
				out = append(out, *r)
				break
			}
		}
	}
	return out
}

// SaveJSONL writes the corpus as JSON lines.
func (s *Store) SaveJSONL(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range s.records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("encode corpus record %d: %w", r.ID, err)
		}
	}
	return bw.Flush()
}

// LoadJSONL reads JSON lines into a fresh store, preserving record IDs.
func LoadJSONL(r io.Reader) (*Store, error) {
	s := NewStore()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("corpus line %d: %w", line, err)
		}
		s.mu.Lock()
		stored := rec
		s.records = append(s.records, &stored)
		s.byID[stored.ID] = &stored
		for _, t := range uniqueContentTokens(stored.Tokens) {
			s.byToken[t] = append(s.byToken[t], stored.ID)
		}
		if stored.ID >= s.nextID {
			s.nextID = stored.ID + 1
		}
		s.mu.Unlock()
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read corpus: %w", err)
	}
	return s, nil
}

func uniqueContentTokens(tokens []string) []string {
	seen := make(map[string]bool, len(tokens))
	out := make([]string, 0, len(tokens))
	for _, t := range sentence.ContentTokens(tokens) {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
