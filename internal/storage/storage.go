// Package storage persists the supervisor's four databases — Distance
// Learning Ontology, Learner Corpus, User Profiles and FAQ — to a plain
// directory, so a chat service survives restarts with its accumulated
// knowledge intact (the paper's premise is agents that stay online and
// keep learning from dialogue).
//
// Layout inside the data directory:
//
//	ontology.xml    paper-markup ontology (Fig. 5 / §4.4 format)
//	corpus.jsonl    learner corpus records, one JSON object per line
//	profiles.json   user profile array
//	faq.jsonl       FAQ entries, one JSON object per line
package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"

	"semagent/internal/corpus"
	"semagent/internal/ontology"
	"semagent/internal/profile"
	"semagent/internal/qa"
)

// File names inside a data directory.
const (
	OntologyFile = "ontology.xml"
	CorpusFile   = "corpus.jsonl"
	ProfilesFile = "profiles.json"
	FAQFile      = "faq.jsonl"
)

// Snapshot is the set of persisted stores. Nil fields are skipped on
// save and left nil on load when the file is absent.
type Snapshot struct {
	Ontology *ontology.Ontology
	Corpus   *corpus.Store
	Profiles *profile.Store
	FAQ      *qa.FAQ
}

// Save writes every non-nil store into dir, creating it if needed.
// Files are written atomically (temp file + rename) so a crash cannot
// leave a half-written database.
func Save(dir string, snap Snapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if snap.Ontology != nil {
		if err := atomicWrite(filepath.Join(dir, OntologyFile), snap.Ontology.EncodeXML); err != nil {
			return fmt.Errorf("storage: ontology: %w", err)
		}
	}
	if snap.Corpus != nil {
		if err := atomicWrite(filepath.Join(dir, CorpusFile), snap.Corpus.SaveJSONL); err != nil {
			return fmt.Errorf("storage: corpus: %w", err)
		}
	}
	if snap.Profiles != nil {
		if err := atomicWrite(filepath.Join(dir, ProfilesFile), snap.Profiles.Save); err != nil {
			return fmt.Errorf("storage: profiles: %w", err)
		}
	}
	if snap.FAQ != nil {
		if err := atomicWrite(filepath.Join(dir, FAQFile), snap.FAQ.Save); err != nil {
			return fmt.Errorf("storage: faq: %w", err)
		}
	}
	return nil
}

// Load reads whatever databases exist in dir. Missing files yield nil
// fields, not errors; a missing directory yields an all-nil snapshot.
func Load(dir string) (Snapshot, error) {
	var snap Snapshot

	if f, err := os.Open(filepath.Join(dir, OntologyFile)); err == nil {
		snap.Ontology, err = ontology.DecodeXML(f)
		_ = f.Close()
		if err != nil {
			return snap, fmt.Errorf("storage: ontology: %w", err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return snap, fmt.Errorf("storage: ontology: %w", err)
	}

	if f, err := os.Open(filepath.Join(dir, CorpusFile)); err == nil {
		snap.Corpus, err = corpus.LoadJSONL(f)
		_ = f.Close()
		if err != nil {
			return snap, fmt.Errorf("storage: corpus: %w", err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return snap, fmt.Errorf("storage: corpus: %w", err)
	}

	if f, err := os.Open(filepath.Join(dir, ProfilesFile)); err == nil {
		snap.Profiles, err = profile.Load(f)
		_ = f.Close()
		if err != nil {
			return snap, fmt.Errorf("storage: profiles: %w", err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return snap, fmt.Errorf("storage: profiles: %w", err)
	}

	if f, err := os.Open(filepath.Join(dir, FAQFile)); err == nil {
		snap.FAQ, err = qa.LoadFAQ(f)
		_ = f.Close()
		if err != nil {
			return snap, fmt.Errorf("storage: faq: %w", err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return snap, fmt.Errorf("storage: faq: %w", err)
	}

	return snap, nil
}

// atomicWrite writes via a temp file and rename. The temp file is
// fsynced before the rename and the parent directory after it: without
// the first sync a crash can surface the renamed file with empty or
// partial content (rename is atomic in the namespace, not for data
// pages), and without the second the rename itself may not survive a
// power loss.
func atomicWrite(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if err := write(tmp); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so renames and unlinks inside it are
// durable. Best effort on platforms where directories cannot be synced.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	_ = d.Close()
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.EBADF)) {
		return nil // e.g. some filesystems refuse fsync on directories
	}
	return err
}
