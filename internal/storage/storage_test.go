package storage

import (
	"os"
	"path/filepath"
	"testing"

	"semagent/internal/corpus"
	"semagent/internal/linkgrammar"
	"semagent/internal/ontology"
	"semagent/internal/profile"
	"semagent/internal/qa"
)

func buildSnapshot() Snapshot {
	onto := ontology.BuildCourseOntology()
	store := corpus.NewStore()
	store.Add(corpus.Record{
		Text:    "The stack has a push operation.",
		Tokens:  linkgrammar.Tokenize("The stack has a push operation."),
		Verdict: corpus.VerdictCorrect,
		Topics:  []string{"stack", "push"},
	})
	profiles := profile.NewStore()
	profiles.RecordMessage("alice", []string{"stack"})
	profiles.RecordSyntaxError("alice", "agreement")
	faq := qa.NewFAQ()
	faq.Record("What is a stack?", "A stack is a LIFO structure.", qa.TemplateDefinition)
	return Snapshot{Ontology: onto, Corpus: store, Profiles: profiles, FAQ: faq}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	snap := buildSnapshot()
	if err := Save(dir, snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	for _, f := range []string{OntologyFile, CorpusFile, ProfilesFile, FAQFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Ontology == nil || back.Ontology.Len() != snap.Ontology.Len() {
		t.Errorf("ontology lost: %v", back.Ontology)
	}
	if back.Ontology != nil {
		if d := back.Ontology.Distance("stack", "pop"); d != 1 {
			t.Errorf("distance(stack,pop) = %d after reload", d)
		}
	}
	if back.Corpus == nil || back.Corpus.Len() != 1 {
		t.Errorf("corpus lost")
	}
	if back.Profiles == nil {
		t.Fatal("profiles lost")
	}
	p, ok := back.Profiles.Get("alice")
	if !ok || p.SyntaxErrors != 1 {
		t.Errorf("alice profile = %+v ok=%v", p, ok)
	}
	if back.FAQ == nil {
		t.Fatal("faq lost")
	}
	if _, ok := back.FAQ.Lookup("what is a stack"); !ok {
		t.Error("faq entry lost")
	}
}

func TestLoadMissingDirectory(t *testing.T) {
	snap, err := Load(filepath.Join(t.TempDir(), "does-not-exist"))
	if err != nil {
		t.Fatalf("missing dir should not error: %v", err)
	}
	if snap.Ontology != nil || snap.Corpus != nil || snap.Profiles != nil || snap.FAQ != nil {
		t.Error("missing dir should yield an empty snapshot")
	}
}

func TestPartialSnapshot(t *testing.T) {
	dir := t.TempDir()
	faq := qa.NewFAQ()
	faq.Record("q", "a", qa.TemplateNone)
	if err := Save(dir, Snapshot{FAQ: faq}); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.FAQ == nil || back.FAQ.Len() != 1 {
		t.Error("faq missing")
	}
	if back.Corpus != nil || back.Ontology != nil || back.Profiles != nil {
		t.Error("absent stores should load as nil")
	}
}

func TestCorruptFileSurfacesError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, OntologyFile), []byte("not xml at all <"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Error("corrupt ontology should fail loading")
	}
}

func TestSaveOverwrites(t *testing.T) {
	dir := t.TempDir()
	snap := buildSnapshot()
	if err := Save(dir, snap); err != nil {
		t.Fatal(err)
	}
	snap.Corpus.Add(corpus.Record{Text: "second", Tokens: []string{"second"}, Verdict: corpus.VerdictCorrect})
	if err := Save(dir, snap); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Corpus.Len() != 2 {
		t.Errorf("corpus len = %d after overwrite, want 2", back.Corpus.Len())
	}
	// No leftover temp files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:4] == ".tmp" {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestSaveLoadPreservesJournalLSNs(t *testing.T) {
	dir := t.TempDir()
	snap := buildSnapshot()
	snap.Ontology.SetJournalLSN(11)
	snap.Corpus.SetJournalLSN(12)
	snap.Profiles.SetJournalLSN(13)
	snap.FAQ.SetJournalLSN(14)
	if err := Save(dir, snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got := back.Ontology.JournalLSN(); got != 11 {
		t.Errorf("ontology LSN = %d, want 11", got)
	}
	if got := back.Corpus.JournalLSN(); got != 12 {
		t.Errorf("corpus LSN = %d, want 12", got)
	}
	if got := back.Profiles.JournalLSN(); got != 13 {
		t.Errorf("profiles LSN = %d, want 13", got)
	}
	if got := back.FAQ.JournalLSN(); got != 14 {
		t.Errorf("faq LSN = %d, want 14", got)
	}
}

func TestAtomicWriteSurvivesExistingFile(t *testing.T) {
	// The fsync'd atomic write path must replace an existing database
	// in place and leave no temp droppings behind.
	dir := t.TempDir()
	snap := buildSnapshot()
	for i := 0; i < 2; i++ {
		if err := Save(dir, snap); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:4] == ".tmp" {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("load after rewrite: %v", err)
	}
}
