package pipeline

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semagent/internal/clock"
	"semagent/internal/metrics"
)

// twoRoomsOnDistinctShards probes room names until two land on
// different shards of p.
func twoRoomsOnDistinctShards(p *Pipeline) (string, string) {
	first := "room-0"
	sh := p.shardFor(first)
	for i := 1; i < 1000; i++ {
		name := fmt.Sprintf("room-%d", i)
		if p.shardFor(name) != sh {
			return first, name
		}
	}
	panic("no second shard found")
}

// TestRoomWatermarkSheds holds the worker and checks a room over its
// in-flight cap has new tasks shed with ErrShed while the counters and
// the OnShed callback agree.
func TestRoomWatermarkSheds(t *testing.T) {
	var shedRooms []string
	var mu sync.Mutex
	p := New(Config{
		Workers: 1, QueueSize: 8,
		Policy: ShedRejectNew, RoomHighWater: 2,
		OnShed: func(room string) { mu.Lock(); shedRooms = append(shedRooms, room); mu.Unlock() },
	})
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit("room", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started // depth 1: running
	if err := p.Submit("room", func() {}); err != nil {
		t.Fatal(err) // depth 2: queued
	}
	for i := 0; i < 3; i++ {
		if err := p.Submit("room", func() {}); err != ErrShed {
			t.Fatalf("submit %d over watermark err = %v, want ErrShed", i, err)
		}
	}
	// A different room on the same shard is not affected by the cap.
	if err := p.Submit("other", func() {}); err != nil {
		t.Fatalf("sibling room submit: %v", err)
	}

	close(gate)
	p.Drain()
	st := p.Stats()
	if st.ShedNew != 3 || st.Shed != 3 || st.ShedOldest != 0 {
		t.Errorf("stats = %+v, want 3 shed-new", st)
	}
	if st.Completed != 3 {
		t.Errorf("completed = %d, want 3", st.Completed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(shedRooms) != 3 || shedRooms[0] != "room" {
		t.Errorf("OnShed calls = %v, want 3x room", shedRooms)
	}
}

// TestGlobalWatermarkRejectNew checks the global in-flight cap under
// the reject-new policy.
func TestGlobalWatermarkRejectNew(t *testing.T) {
	p := New(Config{
		Workers: 1, QueueSize: 8,
		Policy: ShedRejectNew, GlobalHighWater: 3,
	})
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit("a", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started
	for _, room := range []string{"b", "c"} {
		if err := p.Submit(room, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Submit("d", func() {}); err != ErrShed {
		t.Fatalf("submit at global cap err = %v, want ErrShed", err)
	}
	close(gate)
	p.Drain()
	if st := p.Stats(); st.ShedNew != 1 || st.Completed != 3 {
		t.Errorf("stats = %+v, want 1 shed-new and 3 completed", st)
	}
}

// TestOldestDropEvicts fills a shard queue under the oldest-drop policy
// and checks the oldest queued task is evicted (never run), the newest
// admitted, and the counters balance exactly.
func TestOldestDropEvicts(t *testing.T) {
	var shed atomic.Int64
	p := New(Config{
		Workers: 1, QueueSize: 2,
		Policy: ShedOldest,
		OnShed: func(string) { shed.Add(1) },
	})
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit("room", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	var ran [4]atomic.Bool
	for i := 1; i <= 2; i++ { // fills the queue
		i := i
		if err := p.Submit("room", func() { ran[i].Store(true) }); err != nil {
			t.Fatal(err)
		}
	}
	// Queue full: this must evict task 1 (the oldest queued) and admit
	// task 3.
	if err := p.Submit("room", func() { ran[3].Store(true) }); err != nil {
		t.Fatalf("submit with oldest-drop err = %v, want nil", err)
	}

	close(gate)
	p.Drain()
	if ran[1].Load() {
		t.Error("evicted task 1 ran")
	}
	if !ran[2].Load() || !ran[3].Load() {
		t.Error("surviving tasks did not run")
	}
	st := p.Stats()
	if st.ShedOldest != 1 || st.Shed != 1 {
		t.Errorf("stats = %+v, want 1 shed-oldest", st)
	}
	if st.Submitted != 4 || st.Completed != 3 {
		t.Errorf("stats = %+v, want 4 submitted and 3 completed", st)
	}
	if got := shed.Load(); got != 1 {
		t.Errorf("OnShed calls = %d, want 1", got)
	}
	if st.Pending() != 0 {
		t.Errorf("pending = %d, want 0", st.Pending())
	}
}

// TestGlobalWatermarkOldestDrop checks that at the global cap the
// oldest-drop policy trades the oldest queued task for the new one
// instead of refusing it.
func TestGlobalWatermarkOldestDrop(t *testing.T) {
	p := New(Config{
		Workers: 1, QueueSize: 8,
		Policy: ShedOldest, GlobalHighWater: 2,
	})
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit("room", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started
	var second, third atomic.Bool
	if err := p.Submit("room", func() { second.Store(true) }); err != nil {
		t.Fatal(err)
	}
	// In-flight is at the cap (1 running + 1 queued): the oldest queued
	// task is evicted to admit this one.
	if err := p.Submit("room", func() { third.Store(true) }); err != nil {
		t.Fatalf("submit at cap err = %v, want nil under oldest-drop", err)
	}
	close(gate)
	p.Drain()
	if second.Load() {
		t.Error("evicted task ran")
	}
	if !third.Load() {
		t.Error("admitted task did not run")
	}
	if st := p.Stats(); st.ShedOldest != 1 || st.Completed != 2 {
		t.Errorf("stats = %+v, want 1 shed-oldest and 2 completed", st)
	}
}

// TestShedCountsExact floods a held pool from many goroutines and
// checks — under -race — that the shed counters match the dropped
// submissions exactly: every Submit either completed, was counted shed,
// or was evicted, with nothing lost or double-counted.
func TestShedCountsExact(t *testing.T) {
	var onShed atomic.Int64
	p := New(Config{
		Workers: 2, QueueSize: 4,
		Policy: ShedRejectNew, RoomHighWater: 3, GlobalHighWater: 6,
		OnShed: func(string) { onShed.Add(1) },
	})
	defer p.Close()

	const goroutines, perG = 8, 200
	var submitErrs atomic.Int64 // ErrShed observed by submitters
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			room := fmt.Sprintf("room-%d", g%4)
			for i := 0; i < perG; i++ {
				// Tasks yield a few times so submitters genuinely race
				// the workers (no wall-clock sleep needed).
				task := func() {
					for y := 0; y < 8; y++ {
						runtime.Gosched()
					}
				}
				switch err := p.Submit(room, task); err {
				case nil:
					accepted.Add(1)
				case ErrShed:
					submitErrs.Add(1)
				default:
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	p.Drain()
	st := p.Stats()
	if st.ShedNew != submitErrs.Load() {
		t.Errorf("ShedNew = %d, ErrShed seen by submitters = %d", st.ShedNew, submitErrs.Load())
	}
	if st.Shed != onShed.Load() {
		t.Errorf("Shed = %d, OnShed calls = %d", st.Shed, onShed.Load())
	}
	if st.Submitted != accepted.Load() {
		t.Errorf("Submitted = %d, accepted = %d", st.Submitted, accepted.Load())
	}
	if st.Completed+st.ShedOldest != st.Submitted {
		t.Errorf("completed %d + evicted %d != submitted %d", st.Completed, st.ShedOldest, st.Submitted)
	}
	if total := st.Submitted + st.ShedNew; total != goroutines*perG {
		t.Errorf("accepted+shed = %d, want %d submissions accounted for", total, goroutines*perG)
	}
}

// TestSlowRoomDoesNotStallSiblings pins one room's worker on a gate and
// checks a sibling room on another shard completes its whole workload
// while the slow room sheds — the failure-injection scenario of the D10
// admission-control design.
func TestSlowRoomDoesNotStallSiblings(t *testing.T) {
	p := New(Config{
		Workers: 2, QueueSize: 16,
		Policy: ShedRejectNew, RoomHighWater: 4,
	})
	defer p.Close()
	slowRoom, fastRoom := twoRoomsOnDistinctShards(p)

	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	if err := p.Submit(slowRoom, func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started

	// Flood the slow room: everything over the watermark sheds, nothing
	// blocks.
	slowSheds := 0
	for i := 0; i < 50; i++ {
		if err := p.Submit(slowRoom, func() {}); err == ErrShed {
			slowSheds++
		}
	}
	if slowSheds == 0 {
		t.Fatal("flooded slow room never shed")
	}

	// The sibling's full workload completes while the slow room's
	// worker is still gated. The fast room may transiently shed when
	// its submitter outruns its own worker — that is the policy working
	// — but it must always make progress: a retry gets through as soon
	// as its worker drains.
	const fastTasks = 100
	var fastDone atomic.Int64
	for i := 0; i < fastTasks; i++ {
		var submitErr error
		ok := clock.Until(5*time.Second, func() bool {
			submitErr = p.Submit(fastRoom, func() { fastDone.Add(1) })
			return submitErr != ErrShed
		})
		if !ok {
			t.Fatalf("fast room starved: submit %d kept shedding", i)
		}
		if submitErr != nil {
			t.Fatalf("fast room submit %d: %v", i, submitErr)
		}
	}
	if !clock.Until(5*time.Second, func() bool { return fastDone.Load() >= fastTasks }) {
		t.Fatalf("sibling stalled: %d/%d done while slow room gated", fastDone.Load(), fastTasks)
	}
}

// TestSubmitBlockedDuringCloseReturns is the regression test for the
// blocked-send-with-no-drainer deadlock: a Submit blocked on a full
// queue must be released promptly when Close is called, even though the
// queue's worker is wedged and nothing will ever drain the queue.
func TestSubmitBlockedDuringCloseReturns(t *testing.T) {
	p := New(Config{Workers: 1, QueueSize: 1, Block: true})

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit("room", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := p.Submit("room", func() {}); err != nil { // fills the queue
		t.Fatal(err)
	}

	blocked := make(chan error, 1)
	go func() { blocked <- p.Submit("room", func() {}) }()
	// The submitter has committed to blocking once the counter ticks.
	if !clock.Until(5*time.Second, func() bool { return p.Stats().Blocked == 1 }) {
		t.Fatal("submitter never reached the blocking path")
	}

	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()

	// The blocked submitter must resolve without the worker making any
	// progress — the gate is still shut.
	select {
	case err := <-blocked:
		if err != ErrClosed && err != nil {
			t.Fatalf("blocked submit err = %v, want ErrClosed or nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Submit deadlocked: blocked send never released by Close")
	}

	close(gate) // let Close finish draining
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not finish after the worker was released")
	}
}

// TestPipelineMetrics wires a registry and checks the exported counters
// agree with Stats and the exposition is valid Prometheus text.
func TestPipelineMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	p := New(Config{
		Workers: 2, QueueSize: 4,
		Policy: ShedRejectNew, RoomHighWater: 2,
		Metrics: reg,
	})
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit("room", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := p.Submit("room", func() {}); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit("room", func() {}); err != ErrShed {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	close(gate)
	p.Drain()

	st := p.Stats()
	if got := reg.Counter("semagent_pipeline_submitted_total", "").Value(); got != st.Submitted {
		t.Errorf("metric submitted = %d, stats %d", got, st.Submitted)
	}
	if got := reg.Counter("semagent_pipeline_completed_total", "").Value(); got != st.Completed {
		t.Errorf("metric completed = %d, stats %d", got, st.Completed)
	}
	if got := reg.Counter("semagent_pipeline_shed_total", "", metrics.L("kind", "reject-new")).Value(); got != st.ShedNew {
		t.Errorf("metric shed = %d, stats %d", got, st.ShedNew)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if err := metrics.ValidateExposition(strings.NewReader(b.String())); err != nil {
		t.Fatalf("pipeline exposition invalid: %v\n%s", err, b.String())
	}
}

// TestRoomDepthNeverLeaks hammers one room with instantly-completing
// tasks and checks the per-room in-flight ledger returns to zero: the
// regression is a worker finishing a task before the submitter's
// increment lands, whose decrement the zero-clamp would discard,
// leaking depth until the watermark sheds an idle room forever.
func TestRoomDepthNeverLeaks(t *testing.T) {
	p := New(Config{
		Workers: 1, QueueSize: 4096, // bigger than the workload: the queue never fills
		Policy: ShedRejectNew, RoomHighWater: 1 << 20, // never trips
	})
	defer p.Close()
	for i := 0; i < 2000; i++ {
		if err := p.Submit("room", func() {}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Drain()
	if d := p.RoomDepth("room"); d != 0 {
		t.Fatalf("room depth = %d after drain, want 0 — ledger leaked", d)
	}
	if got := p.inflightTasks.Load(); got != 0 {
		t.Fatalf("inflight = %d after drain, want 0", got)
	}
}

// TestParseShedPolicy covers the flag mapping.
func TestParseShedPolicy(t *testing.T) {
	for in, want := range map[string]ShedPolicy{
		"": ShedNone, "none": ShedNone, "block": ShedNone,
		"reject-new": ShedRejectNew, "reject": ShedRejectNew,
		"oldest-drop": ShedOldest, "oldest": ShedOldest,
	} {
		got, err := ParseShedPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseShedPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseShedPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}
