package pipeline

import (
	"fmt"
	"sync"
	"testing"
)

// TestBatchDrainAccounting checks that batch draining changes only when
// tasks run, never how they are counted: every submitted task completes
// exactly once, in per-room submission order, and the Stats ledger
// balances exactly as without batching.
func TestBatchDrainAccounting(t *testing.T) {
	const (
		rooms = 8
		tasks = 100
	)
	p := New(Config{Workers: 2, QueueSize: 16, Block: true, BatchDrain: 8})
	defer p.Close()

	var mu sync.Mutex
	seen := make(map[string][]int, rooms)

	var wg sync.WaitGroup
	for r := 0; r < rooms; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			room := fmt.Sprintf("room-%d", r)
			for i := 0; i < tasks; i++ {
				i := i
				if err := p.Submit(room, func() {
					mu.Lock()
					seen[room] = append(seen[room], i)
					mu.Unlock()
				}); err != nil {
					t.Errorf("%s submit %d: %v", room, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	p.Drain()

	st := p.Stats()
	if st.Submitted != rooms*tasks || st.Completed != rooms*tasks {
		t.Fatalf("stats submitted=%d completed=%d, want %d each", st.Submitted, st.Completed, rooms*tasks)
	}
	if st.Pending() != 0 {
		t.Fatalf("pending = %d after drain", st.Pending())
	}
	mu.Lock()
	defer mu.Unlock()
	for room, order := range seen {
		if len(order) != tasks {
			t.Fatalf("%s ran %d tasks, want %d", room, len(order), tasks)
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("%s task order broken at %d: got %d", room, i, got)
			}
		}
	}
}
