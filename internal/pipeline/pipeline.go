// Package pipeline fans supervised chat-room messages out to a pool of
// worker goroutines sharded by room (DESIGN.md, design decisions D7 and
// D10). One classroom at paper scale is a single-threaded loop; a
// deployment supervising many classrooms needs rooms to run in parallel
// while each room's dialogue keeps its order — agent feedback referring
// to "the previous message" is wrong if messages are reordered. Hashing
// the room name onto a fixed shard gives both properties: tasks for one
// room always land on the same single-worker queue (FIFO), different
// rooms spread across the pool.
//
// Each shard's queue is bounded. Without admission control a full queue
// either rejects the task (ErrFull, Config.Block=false) or blocks the
// submitter until space frees (Config.Block=true) — backpressure
// instead of unbounded goroutine growth. With admission control
// (Config.Policy != ShedNone) the pipeline sheds load deterministically
// instead of blocking: a room above its queue-depth watermark, or the
// whole pool above its in-flight watermark, drops the new task
// (ShedRejectNew) or evicts the oldest queued task of the shard
// (ShedOldest) — so a traffic spike degrades supervision coverage,
// never end-to-end chat latency. Stats exposes submitted/completed/
// rejected/shed counts and queue high-water marks so operators can see
// saturation; a metrics.Registry (Config.Metrics) additionally gets
// queue-wait and task-duration histograms on the hot path.
package pipeline

import (
	"errors"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"semagent/internal/clock"
	"semagent/internal/metrics"
)

// Errors returned by Submit.
var (
	// ErrFull reports a full shard queue in non-blocking mode without
	// admission control.
	ErrFull = errors.New("pipeline: shard queue full")
	// ErrClosed reports submission after Close.
	ErrClosed = errors.New("pipeline: closed")
	// ErrShed reports that admission control refused the task: the
	// submitting room is over its queue-depth watermark, or the pool is
	// over its global in-flight watermark under the reject-new policy.
	ErrShed = errors.New("pipeline: shed by admission control")
)

// ShedPolicy selects what admission control does at a watermark.
type ShedPolicy uint8

// Admission-control policies.
const (
	// ShedNone disables admission control: a full queue blocks
	// (Config.Block) or rejects with ErrFull — the pre-D10 behaviour.
	ShedNone ShedPolicy = iota
	// ShedRejectNew drops the incoming task (the submitter learns
	// immediately via ErrShed).
	ShedRejectNew
	// ShedOldest evicts the oldest queued task of the target shard to
	// make room for the new one — freshest-first supervision, the
	// right choice when stale feedback is worthless to learners.
	ShedOldest
)

// String names the policy (flag values of cmd/chatserver).
func (p ShedPolicy) String() string {
	switch p {
	case ShedNone:
		return "none"
	case ShedRejectNew:
		return "reject-new"
	case ShedOldest:
		return "oldest-drop"
	default:
		return "unknown"
	}
}

// ParseShedPolicy maps a flag string to a policy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "", "none", "block":
		return ShedNone, nil
	case "reject-new", "reject":
		return ShedRejectNew, nil
	case "oldest-drop", "oldest":
		return ShedOldest, nil
	default:
		return ShedNone, errors.New("pipeline: unknown shed policy " + s)
	}
}

// Config sizes a Pipeline. The zero value selects sensible defaults.
type Config struct {
	// Workers is the number of shards, each served by one goroutine.
	// 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueSize is each shard's task-queue capacity. 0 selects 256.
	QueueSize int
	// Block makes Submit wait for queue space instead of returning
	// ErrFull. Ignored when Policy != ShedNone (admission control never
	// blocks — that is its point). The chat server without shedding
	// uses blocking mode: supervision applies backpressure to a
	// flooding client rather than silently dropping its messages.
	Block bool

	// Policy enables admission control (DESIGN.md D10).
	Policy ShedPolicy
	// RoomHighWater caps one room's tasks in flight (queued or
	// running); a room at the cap has its new tasks shed (both
	// policies — evicting another room's work to admit a flooding room
	// would invert fairness). 0 means no per-room cap.
	RoomHighWater int
	// GlobalHighWater caps tasks in flight (queued + running) across
	// all shards. At the cap ShedRejectNew drops the new task and
	// ShedOldest evicts the oldest queued task of the target shard.
	// 0 means no global cap.
	GlobalHighWater int
	// OnShed, if set, is called once per shed task with the room it
	// belonged to — the evicted task of ShedOldest has no live
	// submitter to hand an error to. Called outside all pipeline locks.
	OnShed func(room string)

	// BatchDrain lets a worker that wakes for one task drain up to this
	// many queued tasks from its shard and run them back to back,
	// amortizing the wakeup (and the submitter/worker cache handoff)
	// across a burst. Every task keeps its own accounting — queue-wait
	// and duration observations, completion counters, Drain/Close
	// semantics are unchanged. 0 or 1 disables batching.
	BatchDrain int

	// Metrics, if set, registers the pipeline's counters, gauges and
	// latency histograms (semagent_pipeline_*).
	Metrics *metrics.Registry

	// Clock supplies the timestamps behind the queue-wait and
	// task-duration histograms. nil selects the wall clock; the
	// simulator injects a virtual clock so latency accounting is
	// deterministic and reproducible from the seed (DESIGN.md D11).
	Clock clock.Clock
}

// Stats is a snapshot of pipeline counters.
type Stats struct {
	// Workers is the shard count.
	Workers int
	// Submitted, Completed and Rejected count tasks accepted, finished
	// and refused (ErrFull).
	Submitted, Completed, Rejected int64
	// Blocked counts Submit calls that had to wait for queue space.
	Blocked int64
	// Shed counts tasks dropped by admission control: new tasks refused
	// at a watermark (ShedNew) plus queued tasks evicted by the
	// oldest-drop policy (ShedOldest). Evicted tasks were previously
	// Submitted; they are never Completed.
	Shed, ShedNew, ShedOldest int64
	// QueueDepth is the current number of queued tasks across shards.
	QueueDepth int
	// MaxQueueDepth is the high-water mark of a single shard queue.
	MaxQueueDepth int
}

// Pending is the number of accepted tasks not yet completed or evicted.
func (s Stats) Pending() int64 { return s.Submitted - s.Completed - s.ShedOldest }

// Merge adds another snapshot's counters into this one and returns the
// sum (gauges take the maximum). Callers that restart a pipeline — the
// chaos simulator rebuilds one per crash/recovery cycle — use it to
// account a whole session across pipeline lifetimes.
func (s Stats) Merge(o Stats) Stats {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Submitted += o.Submitted
	s.Completed += o.Completed
	s.Rejected += o.Rejected
	s.Blocked += o.Blocked
	s.Shed += o.Shed
	s.ShedNew += o.ShedNew
	s.ShedOldest += o.ShedOldest
	s.QueueDepth += o.QueueDepth
	if o.MaxQueueDepth > s.MaxQueueDepth {
		s.MaxQueueDepth = o.MaxQueueDepth
	}
	return s
}

// task is one queued unit of work with its room attribution (for
// per-room accounting and shed notification) and enqueue time (for the
// queue-wait histogram).
type task struct {
	room     string
	fn       func()
	enqueued time.Time
}

// shard is one worker's queue plus the per-room depth ledger of the
// rooms hashed onto it. Rooms never span shards, so room accounting
// needs only the shard's own lock — workers on different shards never
// serialize on shared bookkeeping.
type shard struct {
	jobs chan *task

	mu        sync.Mutex
	roomDepth map[string]int
}

func (sh *shard) addRoom(room string, delta int) {
	sh.mu.Lock()
	d := sh.roomDepth[room] + delta
	if d <= 0 {
		delete(sh.roomDepth, room)
	} else {
		sh.roomDepth[room] = d
	}
	sh.mu.Unlock()
}

func (sh *shard) depthOf(room string) int {
	sh.mu.Lock()
	d := sh.roomDepth[room]
	sh.mu.Unlock()
	return d
}

// pipeMetrics are the registered hot-path instruments (nil when the
// pipeline runs unobserved).
type pipeMetrics struct {
	submitted, completed, rejected, blocked *metrics.Counter
	shedNew, shedOldest                     *metrics.Counter
	queueWait, taskDur                      *metrics.Histogram
}

func newPipeMetrics(r *metrics.Registry) *pipeMetrics {
	if r == nil {
		return nil
	}
	return &pipeMetrics{
		submitted:  r.Counter("semagent_pipeline_submitted_total", "tasks accepted onto a shard queue"),
		completed:  r.Counter("semagent_pipeline_completed_total", "tasks run to completion"),
		rejected:   r.Counter("semagent_pipeline_rejected_total", "tasks refused with ErrFull (non-blocking, no admission control)"),
		blocked:    r.Counter("semagent_pipeline_blocked_total", "Submit calls that waited for queue space"),
		shedNew:    r.Counter("semagent_pipeline_shed_total", "tasks dropped by admission control", metrics.L("kind", "reject-new")),
		shedOldest: r.Counter("semagent_pipeline_shed_total", "tasks dropped by admission control", metrics.L("kind", "oldest-drop")),
		queueWait:  r.DurationHistogram("semagent_pipeline_queue_wait_seconds", "submit-to-dequeue latency (includes any blocking wait for queue space)"),
		taskDur:    r.DurationHistogram("semagent_pipeline_task_seconds", "task execution latency"),
	}
}

// Pipeline is the sharded worker pool. Safe for concurrent use.
type Pipeline struct {
	shards []*shard
	cfg    Config
	met    *pipeMetrics
	clk    clock.Clock
	// trackRooms gates the per-room depth ledger and trackInflight the
	// shared in-flight counter: each only has readers under admission
	// control (plus the metrics gauge for the latter), so the default
	// configuration skips the per-task shard-mutex map updates and the
	// cross-shard atomic RMWs entirely.
	trackRooms    bool
	trackInflight bool

	// inflightTasks counts queued + running tasks (the global
	// watermark's subject); atomic so admission checks stay off p.mu.
	inflightTasks atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	closing  chan struct{}
	inflight int // blocked submitters Close must wait out

	submitted, rejected, blocked int64
	shedNew, shedOldest          int64
	maxDepth                     int

	// completed is atomic and waiters gates the cond broadcast, so the
	// per-task completion path stays off the shared mutex — workers on
	// different shards must not serialize on bookkeeping.
	completed atomic.Int64
	waiters   atomic.Int32

	wg sync.WaitGroup
}

// New starts the worker pool.
func New(cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.Policy != ShedNone {
		// Admission control supersedes blocking: watermarks shed
		// deterministically, they never stall a submitter.
		cfg.Block = false
	}
	p := &Pipeline{
		shards:        make([]*shard, cfg.Workers),
		cfg:           cfg,
		met:           newPipeMetrics(cfg.Metrics),
		clk:           clock.Or(cfg.Clock),
		trackRooms:    cfg.Policy != ShedNone,
		trackInflight: cfg.Policy != ShedNone || cfg.Metrics != nil,
		closing:       make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.shards {
		p.shards[i] = &shard{
			jobs:      make(chan *task, cfg.QueueSize),
			roomDepth: make(map[string]int),
		}
		p.wg.Add(1)
		go p.worker(p.shards[i])
	}
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc("semagent_pipeline_queue_depth", "queued tasks across shards",
			func() int64 { return int64(p.queueDepth()) })
		cfg.Metrics.GaugeFunc("semagent_pipeline_inflight", "tasks queued or running",
			func() int64 { return p.inflightTasks.Load() })
	}
	return p
}

func (p *Pipeline) worker(sh *shard) {
	defer p.wg.Done()
	for t := range sh.jobs {
		p.runTask(sh, t)
		// Batch drain: opportunistically run whatever else is already
		// queued (bounded), without ever blocking on an empty queue.
	drain:
		for n := 1; n < p.cfg.BatchDrain; n++ {
			select {
			case t2, ok := <-sh.jobs:
				if !ok {
					return // Close: channel drained and closed
				}
				p.runTask(sh, t2)
			default:
				break drain
			}
		}
	}
}

// runTask executes one task with full per-task accounting; batch
// draining changes when tasks run, never how they are counted.
func (p *Pipeline) runTask(sh *shard, t *task) {
	// Timestamps come from the injected clock so that, under the
	// simulator's virtual clock, the same seed reproduces the same
	// latency histograms bit for bit.
	var start time.Time
	if p.met != nil {
		p.met.queueWait.ObserveDuration(p.clk.Since(t.enqueued))
		start = p.clk.Now()
	}
	t.fn()
	if p.met != nil {
		p.met.taskDur.ObserveDuration(p.clk.Since(start))
		p.met.completed.Inc()
	}
	p.finishTask(sh, t)
	p.completed.Add(1)
	if p.waiters.Load() > 0 {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// finishTask releases a task's room and in-flight accounting (shared by
// the worker's completion path and the oldest-drop eviction path).
func (p *Pipeline) finishTask(sh *shard, t *task) {
	if p.trackRooms {
		sh.addRoom(t.room, -1)
	}
	if p.trackInflight {
		p.inflightTasks.Add(-1)
	}
}

// shardFor hashes the room name onto a shard; every task of one room
// lands on the same FIFO queue.
func (p *Pipeline) shardFor(room string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(room))
	return p.shards[int(h.Sum32())%len(p.shards)]
}

// Submit enqueues a task on the room's shard. Tasks of one room run in
// submission order; tasks of different rooms run in parallel. Returns
// ErrShed when admission control refuses the task, ErrFull when the
// shard queue is full in non-blocking mode without admission control,
// ErrClosed after Close.
func (p *Pipeline) Submit(room string, fn func()) error {
	if fn == nil {
		return errors.New("pipeline: nil task")
	}
	sh := p.shardFor(room)
	t := &task{room: room, fn: fn}
	if p.met != nil {
		// Stamped at Submit entry: the queue-wait histogram measures
		// submit-to-dequeue, which deliberately includes a blocking
		// Submit's wait for queue space (the stamp cannot be set after
		// the send — the worker may already have dequeued the task).
		t.enqueued = p.clk.Now()
	}

	p.mu.Lock()
	if p.closed {
		// The closed check precedes admission control: a Submit racing
		// Close must see ErrClosed, not a shed (and must never evict
		// from a queue Close has promised to run to completion).
		p.mu.Unlock()
		return ErrClosed
	}
	// Admission control: watermark sheds are deterministic functions
	// of current depth, not races against a draining worker.
	var evicted []string
	if p.cfg.Policy != ShedNone {
		if p.cfg.RoomHighWater > 0 && sh.depthOf(room) >= p.cfg.RoomHighWater {
			p.shedNewLocked()
			p.mu.Unlock()
			p.notifyShed(room)
			return ErrShed
		}
		if p.cfg.GlobalHighWater > 0 && p.inflightTasks.Load() >= int64(p.cfg.GlobalHighWater) {
			var r string
			if p.cfg.Policy == ShedOldest {
				r = p.evictOldestLocked(sh)
			}
			if r == "" { // reject-new, or nothing queued to evict
				p.shedNewLocked()
				p.mu.Unlock()
				p.notifyShed(room)
				return ErrShed
			}
			evicted = append(evicted, r)
		}
	}

	// Reserve the room/in-flight accounting BEFORE the send: once the
	// task is on the channel a worker may finish it — and decrement —
	// at any moment, so the increment must already be visible or the
	// clamp in addRoom would discard the decrement and leak depth.
	p.reserve(sh, room)
	select {
	case sh.jobs <- t:
		p.acceptLocked(sh)
		p.mu.Unlock()
		p.notifyShedAll(evicted)
		return nil
	default:
	}
	if p.cfg.Policy == ShedOldest {
		// Full shard queue: evict the oldest queued task to admit the
		// new one. The eviction and the racing worker both receive from
		// sh.jobs, so whichever wins, the send below finds space (the
		// retry loop covers other submitters stealing the slot first —
		// every eviction it makes is notified after unlock).
		for {
			if room := p.evictOldestLocked(sh); room != "" {
				evicted = append(evicted, room)
			}
			select {
			case sh.jobs <- t:
				p.acceptLocked(sh)
				p.mu.Unlock()
				p.notifyShedAll(evicted)
				return nil
			default:
			}
		}
	}
	if p.cfg.Policy == ShedRejectNew {
		p.unreserve(sh, room)
		p.shedNewLocked()
		p.mu.Unlock()
		p.notifyShed(room)
		return ErrShed
	}
	if !p.cfg.Block {
		p.unreserve(sh, room)
		p.rejected++
		if p.met != nil {
			p.met.rejected.Inc()
		}
		p.mu.Unlock()
		return ErrFull
	}
	// Blocking path: wait for space outside the lock, but register as
	// in flight so Close does not tear the queues down under us. The
	// select on p.closing is what keeps a Submit blocked on a full
	// queue from deadlocking when Close stops the drainers.
	p.blocked++
	if p.met != nil {
		p.met.blocked.Inc()
	}
	p.inflight++
	p.mu.Unlock()

	select {
	case sh.jobs <- t:
		p.mu.Lock()
		p.inflight--
		p.acceptLocked(sh)
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil
	case <-p.closing:
		p.mu.Lock()
		p.inflight--
		p.unreserve(sh, room)
		p.cond.Broadcast()
		p.mu.Unlock()
		return ErrClosed
	}
}

// reserve accounts a task's room and in-flight slots ahead of the
// enqueue attempt (see Submit); unreserve rolls it back on the paths
// that end up not enqueueing.
func (p *Pipeline) reserve(sh *shard, room string) {
	if p.trackRooms {
		sh.addRoom(room, 1)
	}
	if p.trackInflight {
		p.inflightTasks.Add(1)
	}
}

func (p *Pipeline) unreserve(sh *shard, room string) {
	if p.trackRooms {
		sh.addRoom(room, -1)
	}
	if p.trackInflight {
		p.inflightTasks.Add(-1)
	}
}

// acceptLocked accounts a successful (already reserved) enqueue
// (p.mu held).
func (p *Pipeline) acceptLocked(sh *shard) {
	p.submitted++
	if p.met != nil {
		p.met.submitted.Inc()
	}
	if d := len(sh.jobs); d > p.maxDepth {
		p.maxDepth = d
	}
}

// shedNewLocked / shedOldestLocked count one dropped task (p.mu held);
// the caller notifies OnShed with the room after unlocking.
func (p *Pipeline) shedNewLocked() {
	p.shedNew++
	if p.met != nil {
		p.met.shedNew.Inc()
	}
}

func (p *Pipeline) shedOldestLocked() {
	p.shedOldest++
	if p.met != nil {
		p.met.shedOldest.Inc()
	}
	// An eviction shrinks Drain's completion target; wake it.
	if p.waiters.Load() > 0 {
		p.cond.Broadcast()
	}
}

func (p *Pipeline) notifyShed(room string) {
	if p.cfg.OnShed != nil {
		p.cfg.OnShed(room)
	}
}

func (p *Pipeline) notifyShedAll(rooms []string) {
	if p.cfg.OnShed != nil {
		for _, r := range rooms {
			p.cfg.OnShed(r)
		}
	}
}

// evictOldestLocked (p.mu held, pipeline not closed) returns the
// evicted task's room, or "" when the queue was empty. The ok guard is
// defense in depth: eviction never legitimately races close(sh.jobs)
// because Close flips p.closed under the same mutex first.
func (p *Pipeline) evictOldestLocked(sh *shard) string {
	select {
	case old, ok := <-sh.jobs:
		if !ok {
			return ""
		}
		p.finishTask(sh, old)
		p.shedOldestLocked()
		return old.room
	default:
		return ""
	}
}

// Drain blocks until every accepted task has completed or been evicted.
// Tasks submitted concurrently with Drain may or may not be waited for.
func (p *Pipeline) Drain() {
	p.waiters.Add(1)
	defer p.waiters.Add(-1)
	p.mu.Lock()
	for p.completed.Load() < p.submitted-p.shedOldest {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close stops accepting tasks, runs everything already queued to
// completion and joins the workers. Blocked submitters are released
// with ErrClosed. Close is idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.closing)
	// A blocked submitter may still win its racing send; wait until all
	// of them have resolved before closing the queues.
	for p.inflight > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()

	for _, sh := range p.shards {
		close(sh.jobs)
	}
	p.wg.Wait()
}

func (p *Pipeline) queueDepth() int {
	depth := 0
	for _, sh := range p.shards {
		depth += len(sh.jobs)
	}
	return depth
}

// RoomDepth reports one room's tasks in flight (its watermark subject).
func (p *Pipeline) RoomDepth(room string) int {
	return p.shardFor(room).depthOf(room)
}

// Stats returns a snapshot of the counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Workers:       len(p.shards),
		Submitted:     p.submitted,
		Completed:     p.completed.Load(),
		Rejected:      p.rejected,
		Blocked:       p.blocked,
		Shed:          p.shedNew + p.shedOldest,
		ShedNew:       p.shedNew,
		ShedOldest:    p.shedOldest,
		QueueDepth:    p.queueDepth(),
		MaxQueueDepth: p.maxDepth,
	}
}
