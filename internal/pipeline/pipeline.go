// Package pipeline fans supervised chat-room messages out to a pool of
// worker goroutines sharded by room (DESIGN.md, design decision D7).
// One classroom at paper scale is a single-threaded loop; a deployment
// supervising many classrooms needs rooms to run in parallel while each
// room's dialogue keeps its order — agent feedback referring to "the
// previous message" is wrong if messages are reordered. Hashing the
// room name onto a fixed shard gives both properties: tasks for one
// room always land on the same single-worker queue (FIFO), different
// rooms spread across the pool.
//
// Each shard's queue is bounded. A full queue either rejects the task
// (ErrFull, Config.Block=false) or blocks the submitter until space
// frees (Config.Block=true) — backpressure instead of unbounded
// goroutine growth. Stats exposes submitted/completed/rejected counts
// and queue high-water marks so operators can see saturation.
package pipeline

import (
	"errors"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// Errors returned by Submit.
var (
	// ErrFull reports a full shard queue in non-blocking mode.
	ErrFull = errors.New("pipeline: shard queue full")
	// ErrClosed reports submission after Close.
	ErrClosed = errors.New("pipeline: closed")
)

// Config sizes a Pipeline. The zero value selects sensible defaults.
type Config struct {
	// Workers is the number of shards, each served by one goroutine.
	// 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// QueueSize is each shard's task-queue capacity. 0 selects 256.
	QueueSize int
	// Block makes Submit wait for queue space instead of returning
	// ErrFull. The chat server uses blocking mode: supervision applies
	// backpressure to a flooding client rather than silently dropping
	// its messages.
	Block bool
}

// Stats is a snapshot of pipeline counters.
type Stats struct {
	// Workers is the shard count.
	Workers int
	// Submitted, Completed and Rejected count tasks accepted, finished
	// and refused (ErrFull).
	Submitted, Completed, Rejected int64
	// Blocked counts Submit calls that had to wait for queue space.
	Blocked int64
	// QueueDepth is the current number of queued tasks across shards.
	QueueDepth int
	// MaxQueueDepth is the high-water mark of a single shard queue.
	MaxQueueDepth int
}

// Pending is the number of accepted tasks not yet completed.
func (s Stats) Pending() int64 { return s.Submitted - s.Completed }

// Pipeline is the sharded worker pool. Safe for concurrent use.
type Pipeline struct {
	shards []chan func()
	block  bool

	mu       sync.Mutex
	cond     *sync.Cond
	closed   bool
	closing  chan struct{}
	inflight int // blocked submitters Close must wait out

	submitted, rejected, blocked int64
	maxDepth                     int

	// completed is atomic and waiters gates the cond broadcast, so the
	// per-task completion path stays off the shared mutex — workers on
	// different shards must not serialize on bookkeeping.
	completed atomic.Int64
	waiters   atomic.Int32

	wg sync.WaitGroup
}

// New starts the worker pool.
func New(cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	p := &Pipeline{
		shards:  make([]chan func(), cfg.Workers),
		block:   cfg.Block,
		closing: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.shards {
		p.shards[i] = make(chan func(), cfg.QueueSize)
		p.wg.Add(1)
		go p.worker(p.shards[i])
	}
	return p
}

func (p *Pipeline) worker(jobs chan func()) {
	defer p.wg.Done()
	for task := range jobs {
		task()
		p.completed.Add(1)
		if p.waiters.Load() > 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// shardFor hashes the room name onto a shard; every task of one room
// lands on the same FIFO queue.
func (p *Pipeline) shardFor(room string) chan func() {
	h := fnv.New32a()
	_, _ = h.Write([]byte(room))
	return p.shards[int(h.Sum32())%len(p.shards)]
}

// Submit enqueues a task on the room's shard. Tasks of one room run in
// submission order; tasks of different rooms run in parallel. Returns
// ErrFull when the shard queue is full in non-blocking mode, ErrClosed
// after Close.
func (p *Pipeline) Submit(room string, task func()) error {
	if task == nil {
		return errors.New("pipeline: nil task")
	}
	jobs := p.shardFor(room)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	select {
	case jobs <- task:
		p.accountSubmitLocked(jobs)
		p.mu.Unlock()
		return nil
	default:
	}
	if !p.block {
		p.rejected++
		p.mu.Unlock()
		return ErrFull
	}
	// Blocking path: wait for space outside the lock, but register as
	// in flight so Close does not tear the queues down under us.
	p.blocked++
	p.inflight++
	p.mu.Unlock()

	select {
	case jobs <- task:
		p.mu.Lock()
		p.inflight--
		p.accountSubmitLocked(jobs)
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil
	case <-p.closing:
		p.mu.Lock()
		p.inflight--
		p.cond.Broadcast()
		p.mu.Unlock()
		return ErrClosed
	}
}

func (p *Pipeline) accountSubmitLocked(jobs chan func()) {
	p.submitted++
	if d := len(jobs); d > p.maxDepth {
		p.maxDepth = d
	}
}

// Drain blocks until every accepted task has completed. Tasks submitted
// concurrently with Drain may or may not be waited for.
func (p *Pipeline) Drain() {
	p.waiters.Add(1)
	defer p.waiters.Add(-1)
	p.mu.Lock()
	for p.completed.Load() < p.submitted {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close stops accepting tasks, runs everything already queued to
// completion and joins the workers. Blocked submitters are released
// with ErrClosed. Close is idempotent.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.closing)
	// A blocked submitter may still win its racing send; wait until all
	// of them have resolved before closing the queues.
	for p.inflight > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()

	for _, jobs := range p.shards {
		close(jobs)
	}
	p.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	depth := 0
	for _, jobs := range p.shards {
		depth += len(jobs)
	}
	return Stats{
		Workers:       len(p.shards),
		Submitted:     p.submitted,
		Completed:     p.completed.Load(),
		Rejected:      p.rejected,
		Blocked:       p.blocked,
		QueueDepth:    depth,
		MaxQueueDepth: p.maxDepth,
	}
}
