package pipeline

import (
	"testing"
	"time"

	"semagent/internal/clock"
	"semagent/internal/metrics"
)

// runVirtualClockSession drives one pipeline run entirely on a virtual
// clock and returns the (count, sum) of the queue-wait and task-duration
// histograms. A single worker, one room and a gate that holds the first
// task until every submission has stamped its enqueue time make the
// latency accounting a pure function of the Advance calls: task i waits
// i*step in the queue and runs for step.
func runVirtualClockSession(t *testing.T, n int, step time.Duration) (waitCount, waitSum, durCount, durSum int64) {
	t.Helper()
	vc := clock.NewVirtual(time.Unix(0, 0))
	reg := metrics.NewRegistry()
	p := New(Config{Workers: 1, QueueSize: n, Metrics: reg, Clock: vc})
	defer p.Close()

	gate := make(chan struct{})
	for i := 0; i < n; i++ {
		fn := func() { vc.Advance(step) }
		if i == 0 {
			fn = func() {
				<-gate
				vc.Advance(step)
			}
		}
		if err := p.Submit("room", fn); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	// Every task is now stamped at virtual t0; release the worker.
	close(gate)
	p.Drain()

	// The registry hands back the already-registered series, so the
	// pipeline's own histograms are readable directly.
	qw := reg.DurationHistogram("semagent_pipeline_queue_wait_seconds",
		"submit-to-dequeue latency (includes any blocking wait for queue space)")
	td := reg.DurationHistogram("semagent_pipeline_task_seconds", "task execution latency")
	return qw.Count(), qw.Sum(), td.Count(), td.Sum()
}

// TestVirtualClockTaskTimings pins the exact latency totals a virtual
// clock must produce: with all n tasks enqueued at t0 on one FIFO shard
// and each task advancing the clock by step, task i's queue wait is
// i*step and its duration is step — no wall time leaks in.
func TestVirtualClockTaskTimings(t *testing.T) {
	const (
		n    = 8
		step = 10 * time.Millisecond
	)
	waitCount, waitSum, durCount, durSum := runVirtualClockSession(t, n, step)

	if waitCount != n || durCount != n {
		t.Fatalf("observation counts = (%d, %d), want (%d, %d)", waitCount, durCount, n, n)
	}
	wantWait := int64(step) * n * (n - 1) / 2
	if waitSum != wantWait {
		t.Errorf("queue-wait sum = %d, want exactly %d (sum of i*step)", waitSum, wantWait)
	}
	wantDur := int64(step) * n
	if durSum != wantDur {
		t.Errorf("task-duration sum = %d, want exactly %d (n*step)", durSum, wantDur)
	}
}

// TestVirtualClockTimingsReproducible runs the same virtual-clock
// session twice and requires bit-identical histogram totals — the D11
// property the simulator relies on: latency accounting is a function of
// the schedule, not of host speed.
func TestVirtualClockTimingsReproducible(t *testing.T) {
	const (
		n    = 16
		step = 3 * time.Millisecond
	)
	wc1, ws1, dc1, ds1 := runVirtualClockSession(t, n, step)
	wc2, ws2, dc2, ds2 := runVirtualClockSession(t, n, step)
	if wc1 != wc2 || ws1 != ws2 || dc1 != dc2 || ds1 != ds2 {
		t.Errorf("runs diverged: (%d, %d, %d, %d) vs (%d, %d, %d, %d)",
			wc1, ws1, dc1, ds1, wc2, ws2, dc2, ds2)
	}
}
