package pipeline

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"semagent/internal/clock"
)

// closeCommitted polls until Close has marked the pipeline closed (new
// submits would see ErrClosed) — the condition the old fixed sleeps
// guessed at.
func closeCommitted(t *testing.T, p *Pipeline) {
	t.Helper()
	ok := clock.Until(5*time.Second, func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.closed
	})
	if !ok {
		t.Fatal("Close never committed")
	}
}

// TestPerRoomOrdering submits numbered tasks for many rooms from one
// goroutine per room and checks every room observed its tasks in
// submission order while the pool ran them concurrently.
func TestPerRoomOrdering(t *testing.T) {
	const (
		rooms = 16
		tasks = 200
	)
	p := New(Config{Workers: 4, QueueSize: 8, Block: true})
	defer p.Close()

	var mu sync.Mutex
	seen := make(map[string][]int, rooms)

	var wg sync.WaitGroup
	for r := 0; r < rooms; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			room := fmt.Sprintf("room-%d", r)
			for i := 0; i < tasks; i++ {
				i := i
				if err := p.Submit(room, func() {
					mu.Lock()
					seen[room] = append(seen[room], i)
					mu.Unlock()
				}); err != nil {
					t.Errorf("%s submit %d: %v", room, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	p.Drain()

	mu.Lock()
	defer mu.Unlock()
	for room, order := range seen {
		if len(order) != tasks {
			t.Errorf("%s: got %d tasks, want %d", room, len(order), tasks)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("%s: task %d ran at position %d — per-room order broken", room, v, i)
			}
		}
	}
	if len(seen) != rooms {
		t.Errorf("got %d rooms, want %d", len(seen), rooms)
	}

	st := p.Stats()
	if st.Submitted != rooms*tasks || st.Completed != rooms*tasks {
		t.Errorf("stats = %+v, want %d submitted and completed", st, rooms*tasks)
	}
	if st.Rejected != 0 {
		t.Errorf("rejected = %d, want 0 in blocking mode", st.Rejected)
	}
}

// TestQueueFullRejects fills one shard while its worker is held and
// checks non-blocking Submit returns ErrFull and counts the rejection.
func TestQueueFullRejects(t *testing.T) {
	p := New(Config{Workers: 1, QueueSize: 2, Block: false})
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit("room", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; queue now empty

	for i := 0; i < 2; i++ {
		if err := p.Submit("room", func() {}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := p.Submit("room", func() {}); err != ErrFull {
		t.Fatalf("overfull submit err = %v, want ErrFull", err)
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	close(gate)
	p.Drain()
	if st := p.Stats(); st.Completed != 3 {
		t.Errorf("completed = %d, want 3", st.Completed)
	}
}

// TestBlockingBackpressure holds a worker, fills the queue, then checks
// a blocking Submit waits until space frees instead of failing.
func TestBlockingBackpressure(t *testing.T) {
	p := New(Config{Workers: 1, QueueSize: 1, Block: true})
	defer p.Close()

	gate := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit("room", func() { close(started); <-gate }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := p.Submit("room", func() {}); err != nil { // fills the queue
		t.Fatal(err)
	}

	unblocked := make(chan error, 1)
	go func() { unblocked <- p.Submit("room", func() {}) }()
	select {
	case err := <-unblocked:
		t.Fatalf("submit returned %v before space freed", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-unblocked; err != nil {
		t.Fatalf("blocked submit: %v", err)
	}
	p.Drain()
	if st := p.Stats(); st.Blocked != 1 || st.Completed != 3 {
		t.Errorf("stats = %+v, want 1 blocked and 3 completed", st)
	}
}

// TestCloseDrainsAndRejects checks Close runs queued tasks, releases
// blocked submitters with ErrClosed, and later submits fail.
func TestCloseDrainsAndRejects(t *testing.T) {
	p := New(Config{Workers: 1, QueueSize: 1, Block: true})

	gate := make(chan struct{})
	started := make(chan struct{})
	ran := make(chan struct{}, 8)
	if err := p.Submit("room", func() { close(started); <-gate; ran <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := p.Submit("room", func() { ran <- struct{}{} }); err != nil {
		t.Fatal(err)
	}

	// A blocked submitter racing Close either gets through or is
	// released with ErrClosed — both are legal; it must not hang.
	blockedErr := make(chan error, 1)
	go func() { blockedErr <- p.Submit("room", func() { ran <- struct{}{} }) }()

	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	closeCommitted(t, p) // Close must commit before the gate opens
	close(gate)
	<-closed

	err := <-blockedErr
	want := 2
	if err == nil {
		want = 3
	} else if err != ErrClosed {
		t.Fatalf("blocked submit err = %v, want nil or ErrClosed", err)
	}
	for i := 0; i < want; i++ {
		select {
		case <-ran:
		case <-time.After(time.Second):
			t.Fatalf("only %d of %d queued tasks ran after Close", i, want)
		}
	}

	if err := p.Submit("room", func() {}); err != ErrClosed {
		t.Fatalf("submit after close err = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

// TestShardSpread checks distinct rooms actually spread across shards.
func TestShardSpread(t *testing.T) {
	p := New(Config{Workers: 8, QueueSize: 4})
	defer p.Close()
	used := make(map[int]bool)
	for r := 0; r < 64; r++ {
		jobs := p.shardFor(fmt.Sprintf("room-%d", r))
		for i, sh := range p.shards {
			if sh == jobs {
				used[i] = true
			}
		}
	}
	if len(used) < 4 {
		t.Errorf("64 rooms hit only %d of 8 shards — bad spread", len(used))
	}
}

// TestDefaults checks the zero config is usable.
func TestDefaults(t *testing.T) {
	p := New(Config{})
	defer p.Close()
	done := make(chan struct{})
	if err := p.Submit("room", func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("task did not run")
	}
	if st := p.Stats(); st.Workers <= 0 {
		t.Errorf("workers = %d, want > 0", st.Workers)
	}
	if err := p.Submit("room", nil); err == nil {
		t.Error("nil task accepted")
	}
}
