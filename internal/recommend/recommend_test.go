package recommend

import (
	"strings"
	"testing"
	"time"

	"semagent/internal/corpus"
	"semagent/internal/ontology"
	"semagent/internal/profile"
	"semagent/internal/sentence"
	"semagent/internal/stats"
)

func TestCourseLibraryCoversCoreTopics(t *testing.T) {
	lib := CourseLibrary()
	for _, topic := range []string{"stack", "queue", "tree", "heap", "hash table", "push", "pop"} {
		if len(lib.ByTopic(topic)) == 0 {
			t.Errorf("library has no material for %q", topic)
		}
	}
	if lib.Len() < 20 {
		t.Errorf("library has only %d sections", lib.Len())
	}
}

func TestForUserPrioritizesMistakeTopics(t *testing.T) {
	ps := profile.NewStore()
	ps.RecordMessage("alice", []string{"stack"})
	ps.RecordMessage("alice", []string{"stack", "push"})
	ps.RecordMessage("alice", []string{"queue"})
	ps.RecordSyntaxError("alice", "agreement")
	p, _ := ps.Get("alice")

	r := New(CourseLibrary())
	recs := r.ForUser(p, 3)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if recs[0].Material.Topic != "stack" && recs[0].Material.Topic != "push" {
		t.Errorf("top recommendation = %q, want a stack-related section", recs[0].Material.Topic)
	}
	for _, rec := range recs {
		if rec.Reason == "" {
			t.Errorf("recommendation %q lacks a reason", rec.Material.ID)
		}
	}
}

func TestForClassUsesHardestTopics(t *testing.T) {
	a := stats.NewAnalyzer()
	mk := func(user string, verdict corpus.Verdict, topics ...string) stats.Event {
		return stats.Event{
			Time: time.Now(), Room: "r1", User: user,
			Verdict: verdict, Pattern: sentence.Simple, Topics: topics,
		}
	}
	for i := 0; i < 5; i++ {
		a.Record(mk("u1", corpus.VerdictSemanticError, "heap"))
	}
	a.Record(mk("u2", corpus.VerdictCorrect, "stack"))

	r := New(CourseLibrary())
	recs := r.ForClass(a, 2)
	if len(recs) == 0 {
		t.Fatal("no class recommendations")
	}
	if recs[0].Material.Topic != "heap" {
		t.Errorf("top class recommendation = %q, want heap", recs[0].Material.Topic)
	}
}

func TestRenderAndEmpty(t *testing.T) {
	if got := Render(nil); !strings.Contains(got, "No recommendations") {
		t.Errorf("empty render = %q", got)
	}
	r := New(CourseLibrary())
	ps := profile.NewStore()
	ps.RecordMessage("bob", []string{"tree"})
	p, _ := ps.Get("bob")
	got := Render(r.ForUser(p, 2))
	if !strings.Contains(got, "Chapter") {
		t.Errorf("render = %q", got)
	}
}

func TestDedupeAndLimit(t *testing.T) {
	r := New(CourseLibrary())
	ps := profile.NewStore()
	for i := 0; i < 3; i++ {
		ps.RecordMessage("carol", []string{"enqueue", "dequeue", "queue", "fifo"})
	}
	p, _ := ps.Get("carol")
	recs := r.ForUser(p, 10)
	seen := make(map[string]bool)
	for _, rec := range recs {
		if seen[rec.Material.ID] {
			t.Errorf("duplicate material %q", rec.Material.ID)
		}
		seen[rec.Material.ID] = true
	}
	if len(r.ForUser(p, 1)) != 1 {
		t.Error("limit not applied")
	}
}

// TestForUserWithExpandsRelatedTopics pins an ontology snapshot and
// checks that sections for topics semantically related to the learner's
// own (stack -> pop/push/lifo) join the list at half weight, below the
// directly discussed topic, while unrelated sections stay out.
func TestForUserWithExpandsRelatedTopics(t *testing.T) {
	ps := profile.NewStore()
	for i := 0; i < 4; i++ {
		ps.RecordMessage("carol", []string{"stack"})
	}
	p, _ := ps.Get("carol")

	snap := ontology.BuildCourseOntology().Snapshot()
	recs := New(CourseLibrary()).ForUserWith(snap, p, 10)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	if recs[0].Material.Topic != "stack" {
		t.Fatalf("top recommendation %q, want the directly discussed stack", recs[0].Material.Topic)
	}
	got := make(map[string]Recommendation)
	for _, r := range recs {
		got[r.Material.Topic] = r
	}
	for _, related := range []string{"pop", "push", "lifo"} {
		rec, ok := got[related]
		if !ok {
			t.Errorf("related topic %q not recommended", related)
			continue
		}
		if rec.Weight >= got["stack"].Weight {
			t.Errorf("related %q weight %d not below direct stack weight %d",
				related, rec.Weight, got["stack"].Weight)
		}
		if !strings.Contains(rec.Reason, "related to stack") {
			t.Errorf("related %q reason %q does not cite stack", related, rec.Reason)
		}
	}
	if _, ok := got["graph"]; ok {
		t.Error("unrelated topic graph recommended")
	}

	// Nil snapshot must reproduce the unexpanded behaviour.
	plain := New(CourseLibrary()).ForUserWith(nil, p, 10)
	for _, r := range plain {
		if r.Material.Topic != "stack" {
			t.Errorf("nil-snapshot expansion leaked topic %q", r.Material.Topic)
		}
	}
}

// TestForUserWithSingleMentionNoTies: with only one mention (weight 1),
// floor-halving yields 0, so no related section may join — and in
// particular none may tie or outrank the directly discussed topic.
func TestForUserWithSingleMentionNoTies(t *testing.T) {
	ps := profile.NewStore()
	ps.RecordMessage("dave", []string{"stack"})
	p, _ := ps.Get("dave")

	snap := ontology.BuildCourseOntology().Snapshot()
	recs := New(CourseLibrary()).ForUserWith(snap, p, 10)
	if len(recs) != 1 || recs[0].Material.Topic != "stack" {
		t.Fatalf("single mention must recommend only the stack section, got %+v", recs)
	}
}
