// Package recommend implements the Teaching Material Recommendation
// component of the paper's architecture (Fig. 3): frequent mistakes and
// struggled-with topics map to sections of the course material, giving
// each learner — and the instructor — targeted reading.
package recommend

import (
	"fmt"
	"sort"
	"strings"

	"semagent/internal/ontology"
	"semagent/internal/profile"
	"semagent/internal/stats"
)

// Material is one section of course material.
type Material struct {
	ID      string
	Topic   string // ontology term the section teaches
	Title   string
	Chapter int
}

// Library is an immutable set of course materials indexed by topic.
type Library struct {
	byTopic map[string][]Material
	all     []Material
}

// NewLibrary indexes the given materials.
func NewLibrary(materials []Material) *Library {
	l := &Library{byTopic: make(map[string][]Material, len(materials))}
	l.all = append(l.all, materials...)
	for _, m := range materials {
		l.byTopic[m.Topic] = append(l.byTopic[m.Topic], m)
	}
	return l
}

// CourseLibrary returns the built-in "Data Structure" course material
// index matching the built-in ontology's topics.
func CourseLibrary() *Library {
	return NewLibrary([]Material{
		{ID: "ch1-intro", Topic: "data structure", Title: "Introduction to Data Structures", Chapter: 1},
		{ID: "ch2-array", Topic: "array", Title: "Arrays and Contiguous Storage", Chapter: 2},
		{ID: "ch2-index", Topic: "index", Title: "Indexing and Random Access", Chapter: 2},
		{ID: "ch3-list", Topic: "linked list", Title: "Linked Lists and Pointers", Chapter: 3},
		{ID: "ch3-node", Topic: "node", Title: "Nodes and Dynamic Allocation", Chapter: 3},
		{ID: "ch3-pointer", Topic: "pointer", Title: "Pointers in Depth", Chapter: 3},
		{ID: "ch4-stack", Topic: "stack", Title: "Stacks and LIFO Discipline", Chapter: 4},
		{ID: "ch4-push", Topic: "push", Title: "Stack Operations: push", Chapter: 4},
		{ID: "ch4-pop", Topic: "pop", Title: "Stack Operations: pop and stack top", Chapter: 4},
		{ID: "ch4-lifo", Topic: "lifo", Title: "LIFO Order and Applications", Chapter: 4},
		{ID: "ch5-queue", Topic: "queue", Title: "Queues and FIFO Discipline", Chapter: 5},
		{ID: "ch5-enqueue", Topic: "enqueue", Title: "Queue Operations: enqueue/dequeue", Chapter: 5},
		{ID: "ch5-dequeue", Topic: "dequeue", Title: "Queue Operations: enqueue/dequeue", Chapter: 5},
		{ID: "ch5-fifo", Topic: "fifo", Title: "FIFO Order and Buffering", Chapter: 5},
		{ID: "ch5-deque", Topic: "deque", Title: "Double-Ended Queues", Chapter: 5},
		{ID: "ch6-tree", Topic: "tree", Title: "Trees and Hierarchies", Chapter: 6},
		{ID: "ch6-bintree", Topic: "binary tree", Title: "Binary Trees", Chapter: 6},
		{ID: "ch6-bst", Topic: "binary search tree", Title: "Binary Search Trees", Chapter: 6},
		{ID: "ch6-traverse", Topic: "traverse", Title: "Tree Traversal Orders", Chapter: 6},
		{ID: "ch6-root", Topic: "root", Title: "Roots, Leaves and Subtrees", Chapter: 6},
		{ID: "ch7-heap", Topic: "heap", Title: "Heaps and Priority Queues", Chapter: 7},
		{ID: "ch7-heapify", Topic: "heapify", Title: "Heapify and Heap Maintenance", Chapter: 7},
		{ID: "ch7-pq", Topic: "priority queue", Title: "Priority Queues", Chapter: 7},
		{ID: "ch8-hash", Topic: "hash table", Title: "Hash Tables", Chapter: 8},
		{ID: "ch8-hashfn", Topic: "hash function", Title: "Hash Functions and Collisions", Chapter: 8},
		{ID: "ch9-graph", Topic: "graph", Title: "Graphs, Vertices and Edges", Chapter: 9},
		{ID: "ch9-vertex", Topic: "vertex", Title: "Graph Representations", Chapter: 9},
		{ID: "ch10-sort", Topic: "sort", Title: "Sorting Algorithms", Chapter: 10},
		{ID: "ch10-search", Topic: "search", Title: "Searching Algorithms", Chapter: 10},
		{ID: "ch10-insert", Topic: "insert", Title: "Insertion Across Structures", Chapter: 10},
		{ID: "ch10-delete", Topic: "delete", Title: "Deletion Across Structures", Chapter: 10},
	})
}

// ByTopic returns the sections teaching a topic.
func (l *Library) ByTopic(topic string) []Material {
	return append([]Material(nil), l.byTopic[topic]...)
}

// Len returns the number of sections.
func (l *Library) Len() int { return len(l.all) }

// Recommendation is a ranked material suggestion.
type Recommendation struct {
	Material Material
	// Weight is the evidence strength (error counts) behind it.
	Weight int
	// Reason explains why it was recommended.
	Reason string
}

// Recommender ranks materials against learner evidence.
type Recommender struct {
	lib *Library
}

// New returns a recommender over the library.
func New(lib *Library) *Recommender {
	return &Recommender{lib: lib}
}

// ForUser recommends sections for one learner from the topics they
// discuss and the mistakes they make.
func (r *Recommender) ForUser(p profile.Profile, limit int) []Recommendation {
	return r.ForUserWith(nil, p, limit)
}

// ForUserWith is ForUser with a pinned ontology snapshot: sections
// teaching topics semantically related (within the default threshold)
// to what the learner discusses are pulled in at half weight, so a
// learner struggling with "stack" is also pointed at the push/pop and
// LIFO sections even before mentioning them. A nil snapshot skips the
// expansion.
func (r *Recommender) ForUserWith(snap *ontology.Snapshot, p profile.Profile, limit int) []Recommendation {
	weights := make(map[string]int)
	reasons := make(map[string]string)
	for topic, n := range p.TopicCounts {
		weights[topic] += n
		reasons[topic] = fmt.Sprintf("you discussed %s %d times", topic, n)
	}
	// Mistakes weigh three times as much as mere mentions.
	if p.SyntaxErrors+p.SemanticErrors > 0 {
		for _, topic := range p.TopTopics(3) {
			weights[topic] += 3 * (p.SyntaxErrors + p.SemanticErrors)
			reasons[topic] = fmt.Sprintf("you made mistakes while discussing %s", topic)
		}
	}
	if snap != nil {
		// Expand from the learner's own topics only — the base weights
		// are frozen first so the result does not depend on map order.
		base := make(map[string]int, len(weights))
		for topic, w := range weights {
			base[topic] = w
		}
		for topic := range r.lib.byTopic {
			if base[topic] > 0 {
				continue
			}
			best, because := 0, ""
			for learnerTopic, w := range base {
				if (w > best || (w == best && learnerTopic < because)) && snap.Related(topic, learnerTopic, 0) {
					best, because = w, learnerTopic
				}
			}
			// Strict floor halving: a related topic must rank below the
			// direct topic that pulled it in, never tie it.
			if half := best / 2; half > 0 {
				weights[topic] = half
				reasons[topic] = fmt.Sprintf("%s is closely related to %s", topic, because)
			}
		}
	}
	return r.rank(weights, reasons, limit)
}

// ForClass recommends sections for the whole class from aggregate
// statistics, prioritizing the hardest topics.
func (r *Recommender) ForClass(a *stats.Analyzer, limit int) []Recommendation {
	weights := make(map[string]int)
	reasons := make(map[string]string)
	for _, row := range a.HardestTopics(10) {
		weights[row.Name] += 5 * row.Count
		reasons[row.Name] = fmt.Sprintf("%d errors while discussing %s", row.Count, row.Name)
	}
	for _, row := range a.TopTopics(10) {
		weights[row.Name] += row.Count
		if reasons[row.Name] == "" {
			reasons[row.Name] = fmt.Sprintf("%s was discussed %d times", row.Name, row.Count)
		}
	}
	return r.rank(weights, reasons, limit)
}

func (r *Recommender) rank(weights map[string]int, reasons map[string]string, limit int) []Recommendation {
	if limit <= 0 {
		limit = 3
	}
	var out []Recommendation
	for topic, w := range weights {
		for _, m := range r.lib.byTopic[topic] {
			out = append(out, Recommendation{Material: m, Weight: w, Reason: reasons[topic]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Material.ID < out[j].Material.ID
	})
	// Dedupe by material ID (a title can back several topics).
	seen := make(map[string]bool, len(out))
	deduped := out[:0]
	for _, rec := range out {
		if !seen[rec.Material.ID] {
			seen[rec.Material.ID] = true
			deduped = append(deduped, rec)
		}
	}
	if len(deduped) > limit {
		deduped = deduped[:limit]
	}
	return deduped
}

// Render formats recommendations as learner-facing text.
func Render(recs []Recommendation) string {
	if len(recs) == 0 {
		return "No recommendations yet — keep chatting!"
	}
	var b strings.Builder
	b.WriteString("Recommended reading:\n")
	for i, rec := range recs {
		fmt.Fprintf(&b, "%d. Chapter %d, %q (%s)\n",
			i+1, rec.Material.Chapter, rec.Material.Title, rec.Reason)
	}
	return b.String()
}
