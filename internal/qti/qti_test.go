package qti

import (
	"bytes"
	"strings"
	"testing"

	"semagent/internal/ontology"
	"semagent/internal/qa"
)

func TestFromFAQ(t *testing.T) {
	f := qa.NewFAQ()
	f.Record("What is a stack?", "A stack is a LIFO structure.", qa.TemplateDefinition)
	f.Record("What is a queue?", "A queue is a FIFO structure.", qa.TemplateDefinition)
	f.Record("What is a stack?", "A stack is a LIFO structure.", qa.TemplateDefinition)

	doc := FromFAQ(f, 10)
	if len(doc.Items) != 2 {
		t.Fatalf("items = %d", len(doc.Items))
	}
	// Most-asked first.
	if !strings.Contains(doc.Items[0].Presentation.Material.Mattext, "stack") {
		t.Errorf("item 0 = %q", doc.Items[0].Presentation.Material.Mattext)
	}
	if doc.Items[0].Presentation.ResponseStr == nil {
		t.Error("FAQ items must be open-response")
	}
	if len(doc.Items[0].Itemfeedback) == 0 ||
		!strings.Contains(doc.Items[0].Itemfeedback[0].Material.Mattext, "LIFO") {
		t.Error("rubric missing")
	}
}

func TestFromOntologyBalancedBank(t *testing.T) {
	onto := ontology.BuildCourseOntology()
	doc := FromOntology(onto, 60)
	if len(doc.Items) == 0 {
		t.Fatal("no items")
	}
	trueItems, falseItems := 0, 0
	for _, item := range doc.Items {
		if item.Resprocessing == nil || len(item.Resprocessing.Respconditions) == 0 {
			t.Fatalf("item %s has no answer key", item.Ident)
		}
		switch item.Resprocessing.Respconditions[0].Varequal {
		case "true":
			trueItems++
		case "false":
			falseItems++
		default:
			t.Fatalf("item %s has bad answer %q", item.Ident, item.Resprocessing.Respconditions[0].Varequal)
		}
		if item.Presentation.ResponseLid == nil || len(item.Presentation.ResponseLid.Labels) != 2 {
			t.Errorf("item %s is not a two-choice item", item.Ident)
		}
	}
	if trueItems == 0 || falseItems == 0 {
		t.Errorf("bank unbalanced: %d true, %d false", trueItems, falseItems)
	}
}

func TestOntologyFactsAreCorrect(t *testing.T) {
	onto := ontology.BuildCourseOntology()
	doc := FromOntology(onto, 200)
	for _, item := range doc.Items {
		text := item.Presentation.Material.Mattext
		// Parse back "True or false: a X has a Y operation."
		text = strings.TrimPrefix(text, "True or false: a ")
		text = strings.TrimSuffix(text, " operation.")
		parts := strings.SplitN(text, " has a ", 2)
		if len(parts) != 2 {
			t.Fatalf("unparseable item text %q", item.Presentation.Material.Mattext)
		}
		concept, op := parts[0], parts[1]
		wantTrue := item.Resprocessing.Respconditions[0].Varequal == "true"
		hasDirect := false
		for _, o := range onto.OperationsOf(concept) {
			if o.Name == op {
				hasDirect = true
			}
		}
		if wantTrue && !hasDirect {
			t.Errorf("item claims %q has %q but ontology disagrees", concept, op)
		}
		if !wantTrue && hasDirect {
			t.Errorf("distractor %q/%q is actually true", concept, op)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	onto := ontology.BuildCourseOntology()
	doc := FromOntology(onto, 10)
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<?xml") || !strings.Contains(out, "<questestinterop>") {
		t.Errorf("output shape wrong:\n%s", out[:120])
	}
	back, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(back.Items) != len(doc.Items) {
		t.Errorf("round trip lost items: %d -> %d", len(doc.Items), len(back.Items))
	}
	if back.Items[0].Ident != doc.Items[0].Ident {
		t.Errorf("ident lost: %q", back.Items[0].Ident)
	}
}

func TestMaxItemsRespected(t *testing.T) {
	onto := ontology.BuildCourseOntology()
	doc := FromOntology(onto, 5)
	if len(doc.Items) != 5 {
		t.Errorf("items = %d, want 5", len(doc.Items))
	}
}
