// Package qti exports the system's accumulated knowledge as IMS QTI
// 1.2-style assessment items — the paper's stated future work of
// "trying to follow some famous distance-learning standards". Two
// generators are provided:
//
//   - FAQ entries become open-response items (the question text with
//     the mined answer as the scoring rubric), so a term's frequent
//     questions turn directly into quiz material.
//   - Ontology has-operation facts become true/false items
//     ("Does a stack have a pop operation?"), giving instructors an
//     auto-generated question bank per topic.
//
// The emitted XML follows the questestinterop/item/presentation shape
// of QTI 1.2 closely enough for LMS import pipelines that accept the
// classic format; it is intentionally a subset (no response processing
// scripts).
package qti

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"semagent/internal/ontology"
	"semagent/internal/qa"
)

// Interop is the questestinterop document root.
type Interop struct {
	XMLName xml.Name `xml:"questestinterop"`
	Items   []Item   `xml:"item"`
}

// Item is one assessment item.
type Item struct {
	Ident         string         `xml:"ident,attr"`
	Title         string         `xml:"title,attr"`
	Presentation  Presentation   `xml:"presentation"`
	Resprocessing *Resprocessing `xml:"resprocessing,omitempty"`
	Itemfeedback  []Feedback     `xml:"itemfeedback,omitempty"`
}

// Presentation carries the question material.
type Presentation struct {
	Material    Material     `xml:"material"`
	ResponseLid *ResponseLid `xml:"response_lid,omitempty"`
	ResponseStr *ResponseStr `xml:"response_str,omitempty"`
}

// Material wraps display text.
type Material struct {
	Mattext string `xml:"mattext"`
}

// ResponseLid is a single-choice response block (true/false items).
type ResponseLid struct {
	Ident        string          `xml:"ident,attr"`
	Rcardinality string          `xml:"rcardinality,attr"`
	Labels       []ResponseLabel `xml:"render_choice>response_label"`
}

// ResponseLabel is one choice.
type ResponseLabel struct {
	Ident    string   `xml:"ident,attr"`
	Material Material `xml:"material"`
}

// ResponseStr is a free-text response block (FAQ items).
type ResponseStr struct {
	Ident string `xml:"ident,attr"`
	Fib   struct {
		Rows int `xml:"rows,attr"`
	} `xml:"render_fib"`
}

// Resprocessing records the correct answer.
type Resprocessing struct {
	Respconditions []Respcondition `xml:"respcondition"`
}

// Respcondition maps a response to a score.
type Respcondition struct {
	Varequal string  `xml:"conditionvar>varequal"`
	Setvar   float64 `xml:"setvar"`
}

// Feedback carries the rubric/answer text.
type Feedback struct {
	Ident    string   `xml:"ident,attr"`
	Material Material `xml:"material"`
}

// FromFAQ converts the top-n FAQ entries into open-response items.
func FromFAQ(f *qa.FAQ, n int) Interop {
	var doc Interop
	for i, e := range f.Top(n) {
		item := Item{
			Ident: fmt.Sprintf("faq-%03d", i+1),
			Title: clip(e.Question, 60),
			Presentation: Presentation{
				Material:    Material{Mattext: e.Question},
				ResponseStr: &ResponseStr{Ident: "answer"},
			},
			Itemfeedback: []Feedback{{
				Ident:    "rubric",
				Material: Material{Mattext: e.Answer},
			}},
		}
		item.Presentation.ResponseStr.Fib.Rows = 3
		doc.Items = append(doc.Items, item)
	}
	return doc
}

// FromOntology generates true/false items from has-operation and
// has-property facts, plus deliberately false distractors built from
// unrelated pairs so the bank is balanced.
func FromOntology(o *ontology.Ontology, maxItems int) Interop {
	// One pinned snapshot: the exported question bank is internally
	// consistent even if the ontology is being edited concurrently.
	snap := o.Snapshot()
	var doc Interop
	add := func(concept, feature string, truth bool) {
		if len(doc.Items) >= maxItems {
			return
		}
		question := fmt.Sprintf("True or false: a %s has a %s operation.", concept, feature)
		correct := "false"
		if truth {
			correct = "true"
		}
		doc.Items = append(doc.Items, Item{
			Ident: fmt.Sprintf("fact-%03d", len(doc.Items)+1),
			Title: clip(question, 60),
			Presentation: Presentation{
				Material: Material{Mattext: question},
				ResponseLid: &ResponseLid{
					Ident: "truth", Rcardinality: "Single",
					Labels: []ResponseLabel{
						{Ident: "true", Material: Material{Mattext: "True"}},
						{Ident: "false", Material: Material{Mattext: "False"}},
					},
				},
			},
			Resprocessing: &Resprocessing{Respconditions: []Respcondition{{
				Varequal: correct, Setvar: 1,
			}}},
		})
	}

	items := snap.Items()
	// True facts from direct edges.
	for _, r := range snap.Relations() {
		if r.Kind != ontology.RelHasOperation {
			continue
		}
		from, okF := snap.ByID(r.From)
		to, okT := snap.ByID(r.To)
		if okF && okT {
			add(from.Name, to.Name, true)
		}
	}
	// False distractors: concept × operation pairs far apart.
	for _, c := range items {
		if c.Kind != ontology.KindConcept {
			continue
		}
		for _, op := range items {
			if op.Kind != ontology.KindOperation {
				continue
			}
			if len(doc.Items) >= maxItems {
				return doc
			}
			if snap.Distance(c.Name, op.Name) > ontology.DefaultRelatedThreshold+1 {
				add(c.Name, op.Name, false)
			}
		}
	}
	return doc
}

// Write emits the document with the QTI prolog.
func (doc Interop) Write(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("encode qti: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Parse reads a questestinterop document (round-trip support).
func Parse(r io.Reader) (Interop, error) {
	var doc Interop
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return doc, fmt.Errorf("decode qti: %w", err)
	}
	return doc, nil
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return strings.TrimSpace(s[:n-1]) + "…"
}
