package loadgen

import (
	"testing"
	"time"

	"semagent/internal/chat"
)

// TestOpenLoopAgainstPlainRoom drives a modest open-loop load at an
// unsupervised chat server and checks the accounting: everything sent
// is echoed, latencies are recorded, goodput is positive.
func TestOpenLoopAgainstPlainRoom(t *testing.T) {
	s := chat.NewServer(chat.ServerOptions{})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	res, err := Run(Config{
		Addr:  addr.String(),
		Rooms: 2, ClientsPerRoom: 2,
		Rate:     200,
		Duration: 500 * time.Millisecond,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 {
		t.Fatal("nothing sent")
	}
	if res.Echoed != res.Sent {
		t.Errorf("echoed %d != sent %d against an idle server", res.Echoed, res.Sent)
	}
	if res.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0", res.Timeouts)
	}
	if res.Goodput <= 0 {
		t.Errorf("goodput = %v, want > 0", res.Goodput)
	}
	if res.P99 <= 0 || res.P50 > res.P99 {
		t.Errorf("latency quantiles p50=%v p99=%v malformed", res.P50, res.P99)
	}
	// Open loop at 200/s for 0.5s should offer roughly 100 messages;
	// allow wide slack for CI noise but catch a broken pacer.
	if res.Sent < 30 {
		t.Errorf("sent = %d, want ≈100 at 200/s over 500ms", res.Sent)
	}
}

// TestRateRequired checks the config validation.
func TestRateRequired(t *testing.T) {
	if _, err := Run(Config{Addr: "127.0.0.1:1"}); err == nil {
		t.Fatal("Rate 0 accepted")
	}
}

// TestLatencyQuantiles covers the sample aggregation.
func TestLatencyQuantiles(t *testing.T) {
	var l latencySamples
	for i := 100; i >= 1; i-- {
		l = append(l, time.Duration(i)*time.Millisecond)
	}
	if got := l.quantile(0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := l.quantile(0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := l.mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", got)
	}
	var empty latencySamples
	if empty.quantile(0.99) != 0 || empty.mean() != 0 {
		t.Error("empty samples should report zero")
	}
}
