// Package loadgen is the open-loop load generator of experiment E12
// (DESIGN.md D10): scripted learners driving real TCP chat connections
// at a configured offered rate, regardless of how fast the server
// responds. Closed-loop clients (like eval.RunE6's) slow down when the
// server does, which hides overload — an open-loop generator keeps
// offering traffic at the target rate, so queue growth, shedding and
// tail latency at 1×/2×/5× capacity become measurable instead of
// self-censoring.
//
// A receiver goroutine per client matches its own broadcasts back in
// FIFO order — the server guarantees per-sender order within a room, so
// the k-th received own message is the k-th sent and the text needs no
// correlation tag (tags would defeat the parse cache and change what
// the supervisor sees). Messages whose echo misses the timeout count as
// timeouts, not latency samples — the report therefore separates
// delivered goodput from offered load.
package loadgen //semalint:allow injectedclock: open-loop pacing and latency are measured against the real wire; virtual time would self-censor overload

import (
	"fmt"
	"sync"
	"time"

	"semagent/internal/chat"
	"semagent/internal/ontology"
	"semagent/internal/quantile"
	"semagent/internal/workload"
)

// Config sizes one load-generation run.
type Config struct {
	// Addr is the chat server's TCP address.
	Addr string
	// Rooms and ClientsPerRoom shape the population (defaults 4 and 2).
	Rooms, ClientsPerRoom int
	// Rate is the aggregate offered message rate in messages/second
	// across all clients (required, > 0).
	Rate float64
	// Duration is how long to offer load (default 2s).
	Duration time.Duration
	// Seed drives the workload generator (sentence mix per client).
	Seed int64
	// Mix selects the sentence mix; the zero value selects
	// workload.DefaultMix.
	Mix workload.Mix
	// EchoTimeout is how long after the run to wait for stragglers and
	// how stale an unmatched send may be before it counts as a timeout
	// (default 5s).
	EchoTimeout time.Duration
	// Ontology seeds the generator vocabulary (default: the built-in
	// course ontology).
	Ontology *ontology.Ontology
	// Wire selects the client framing (chat.WireBinary negotiates
	// length-prefixed frames; the zero value stays on newline-JSON).
	Wire chat.Wire
}

func (c *Config) fill() {
	if c.Rooms <= 0 {
		c.Rooms = 4
	}
	if c.ClientsPerRoom <= 0 {
		c.ClientsPerRoom = 2
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.EchoTimeout <= 0 {
		c.EchoTimeout = 5 * time.Second
	}
	if c.Ontology == nil {
		c.Ontology = ontology.BuildCourseOntology()
	}
	if c.Mix == (workload.Mix{}) {
		c.Mix = workload.DefaultMix()
	}
}

// Result is one run's measurements.
type Result struct {
	// Offered is the configured rate; OfferedSent the messages actually
	// written (open loop: sends can lag the schedule only when the
	// socket itself back-pressures — that gap is part of the result).
	Offered  float64
	Sent     int
	SendRate float64
	// Echoed counts messages whose own broadcast came back in time;
	// Timeouts those that did not. Goodput is echoed messages/second
	// over the whole measurement window (offered window plus the
	// straggler grace period — late echoes must not be credited to the
	// shorter window).
	Echoed   int
	Timeouts int
	Goodput  float64
	// End-to-end say-to-echo latency over the echoed messages.
	P50, P95, P99, Mean time.Duration
	Elapsed             time.Duration
}

// lgClient is one scripted connection.
type lgClient struct {
	room, user string
	cl         *chat.Client
	lines      []string

	mu sync.Mutex
	// pending holds the send times of messages whose echo has not come
	// back yet, in send order; echoes pop from the front (the server
	// preserves per-sender broadcast order).
	pending []time.Time
	echoed  []time.Duration
	next    int
}

// Run drives the configured load against the server and reports.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: Rate must be > 0")
	}

	// Pre-generate every client's script: enough lines to cover the
	// whole run at full rate even if this client gets every tick.
	gen := workload.NewGenerator(cfg.Seed, cfg.Ontology)
	total := int(cfg.Rate*cfg.Duration.Seconds()) + 1
	clients := make([]*lgClient, 0, cfg.Rooms*cfg.ClientsPerRoom)
	for r := 0; r < cfg.Rooms; r++ {
		for c := 0; c < cfg.ClientsPerRoom; c++ {
			lc := &lgClient{
				room: fmt.Sprintf("load-room-%d", r),
				user: fmt.Sprintf("load-%d-%d", r, c),
			}
			per := total/(cfg.Rooms*cfg.ClientsPerRoom) + 1
			for _, s := range gen.Generate(per, cfg.Mix) {
				lc.lines = append(lc.lines, s.Text)
			}
			clients = append(clients, lc)
		}
	}

	for _, lc := range clients {
		cl, err := chat.DialWire(cfg.Addr, lc.room, lc.user, cfg.Wire, cfg.EchoTimeout)
		if err != nil {
			return nil, fmt.Errorf("loadgen dial %s: %w", lc.user, err)
		}
		lc.cl = cl
	}
	defer func() {
		for _, lc := range clients {
			_ = lc.cl.Close()
		}
	}()

	// Receivers: match own echoes by prefix, record latency.
	var rwg sync.WaitGroup
	for _, lc := range clients {
		rwg.Add(1)
		go func(lc *lgClient) {
			defer rwg.Done()
			for m := range lc.cl.Receive() {
				if m.Type != chat.TypeChat || m.From != lc.user {
					continue
				}
				now := time.Now()
				lc.mu.Lock()
				if len(lc.pending) > 0 {
					lc.echoed = append(lc.echoed, now.Sub(lc.pending[0]))
					lc.pending = lc.pending[1:]
				}
				lc.mu.Unlock()
			}
		}(lc)
	}

	// The open-loop schedule: one global pacer hands ticks round-robin
	// to the clients. Each client sends in its own goroutine so one
	// back-pressured socket cannot stall the others' schedules.
	sendCh := make([]chan struct{}, len(clients))
	var swg sync.WaitGroup
	sent := make([]int, len(clients))
	for i, lc := range clients {
		sendCh[i] = make(chan struct{}, 1024)
		swg.Add(1)
		go func(i int, lc *lgClient) {
			defer swg.Done()
			for range sendCh[i] {
				lc.mu.Lock()
				line := lc.lines[lc.next%len(lc.lines)]
				lc.next++
				lc.pending = append(lc.pending, time.Now())
				lc.mu.Unlock()
				if err := lc.cl.Say(line); err != nil {
					lc.mu.Lock()
					lc.pending = lc.pending[:len(lc.pending)-1]
					lc.mu.Unlock()
					return // connection gone; stop this sender
				}
				sent[i]++
			}
		}(i, lc)
	}

	// Batch pacer: at high rates a per-message ticker coalesces and
	// under-delivers, so the pacer wakes on a coarse tick and issues
	// however many sends the schedule says are due by now.
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	tick := 2 * time.Millisecond
	issued := 0
	for {
		now := time.Now()
		if now.After(deadline) {
			break
		}
		due := int(cfg.Rate * now.Sub(start).Seconds())
		for ; issued < due; issued++ {
			// Non-blocking handoff: a client whose sender is stuck in a
			// back-pressured Say accumulates its turns in the buffered
			// channel — and once that fills, misses them. Open loop
			// means the schedule never waits for the server.
			select {
			case sendCh[issued%len(sendCh)] <- struct{}{}:
			default:
			}
		}
		time.Sleep(tick)
	}
	for _, ch := range sendCh {
		close(ch)
	}
	swg.Wait()
	offeredWindow := time.Since(start)

	// Grace period for stragglers: wait until every pending echo either
	// arrives or ages past the timeout.
	graceEnd := time.Now().Add(cfg.EchoTimeout)
	for time.Now().Before(graceEnd) {
		if outstanding(clients) == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Echoes are collected through the grace period, so goodput must be
	// computed over that full window too — crediting drain-time echoes
	// to the shorter offered window would inflate the delivery rate of
	// an overloaded (especially blocking) server.
	measureWindow := time.Since(start)
	for _, lc := range clients {
		_ = lc.cl.Close() // unblocks receivers
	}
	rwg.Wait()

	res := &Result{Offered: cfg.Rate, Elapsed: offeredWindow}
	var all latencySamples
	for idx, lc := range clients {
		res.Sent += sent[idx]
		lc.mu.Lock()
		res.Timeouts += len(lc.pending)
		all = append(all, lc.echoed...)
		lc.mu.Unlock()
	}
	res.Echoed = len(all)
	if offeredWindow > 0 {
		res.SendRate = float64(res.Sent) / offeredWindow.Seconds()
	}
	if measureWindow > 0 {
		res.Goodput = float64(res.Echoed) / measureWindow.Seconds()
	}
	res.P50 = all.quantile(0.50)
	res.P95 = all.quantile(0.95)
	res.P99 = all.quantile(0.99)
	res.Mean = all.mean()
	return res, nil
}

func outstanding(clients []*lgClient) int {
	n := 0
	for _, lc := range clients {
		lc.mu.Lock()
		n += len(lc.pending)
		lc.mu.Unlock()
	}
	return n
}

type latencySamples []time.Duration

func (l latencySamples) quantile(q float64) time.Duration { return quantile.Duration(l, q) }
func (l latencySamples) mean() time.Duration              { return quantile.Mean(l) }
