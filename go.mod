module semagent

go 1.23
