module semagent

go 1.24
