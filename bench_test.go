// Package semagent_test holds the benchmark harness: one benchmark per
// experiment of DESIGN.md §4 (E1–E9) plus micro-benchmarks for the hot
// components. Run with:
//
//	go test -bench=. -benchmem
package semagent_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"semagent/internal/chat"
	"semagent/internal/core"
	"semagent/internal/corpus"
	"semagent/internal/eval"
	"semagent/internal/journal"
	"semagent/internal/linkgrammar"
	"semagent/internal/ontology"
	"semagent/internal/pipeline"
	"semagent/internal/qa"
	"semagent/internal/semantic"
	"semagent/internal/workload"
)

// uncached disables the parse cache so a benchmark isolates the parser
// itself; the cached-vs-uncached comparison lives in E9.
var uncached = linkgrammar.Options{CacheSize: -1}

// BenchmarkE1ParserThroughput measures link-grammar parses per second
// on grammatical course-domain sentences (experiment E1).
func BenchmarkE1ParserThroughput(b *testing.B) {
	sup, err := core.New(core.Config{DisableRecording: true, ParserOptions: uncached})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(1, sup.Ontology())
	sentences := make([]string, 256)
	for i := range sentences {
		sentences[i] = gen.Correct().Text
	}
	parser := sup.Parser()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(sentences[i%len(sentences)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2AngelPipeline measures the Learning_Angel check, half the
// inputs corrupted (experiment E2). The error path includes the repair
// search, so this is the realistic supervision cost.
func BenchmarkE2AngelPipeline(b *testing.B) {
	sup, err := core.New(core.Config{DisableRecording: true, ParserOptions: uncached})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(2, sup.Ontology())
	samples := make([]string, 256)
	for i := range samples {
		if i%2 == 0 {
			samples[i] = gen.Correct().Text
		} else {
			samples[i] = gen.SyntaxError().Text
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sup.Angel().Check(samples[i%len(samples)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3SemanticAgent measures the ontology-distance semantic
// check (experiment E3).
func BenchmarkE3SemanticAgent(b *testing.B) {
	onto := ontology.BuildCourseOntology()
	agent := semantic.New(onto, 0)
	gen := workload.NewGenerator(3, onto)
	samples := make([]string, 256)
	for i := range samples {
		if i%2 == 0 {
			samples[i] = gen.Correct().Text
		} else {
			samples[i] = gen.SemanticError().Text
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.AnalyzeText(samples[i%len(samples)])
	}
}

// BenchmarkE4QASystem measures template-matched question answering
// (experiment E4).
func BenchmarkE4QASystem(b *testing.B) {
	onto := ontology.BuildCourseOntology()
	system := qa.New(onto, nil, nil)
	gen := workload.NewGenerator(4, onto)
	questions := make([]string, 256)
	for i := range questions {
		questions[i] = gen.Question(i%10 == 9).Text
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		system.Ask(questions[i%len(questions)])
	}
}

// BenchmarkE5FAQMining measures dialogue consumption by the corpora
// generator, including QA-pair mining (experiment E5).
func BenchmarkE5FAQMining(b *testing.B) {
	onto := ontology.BuildCourseOntology()
	gen := workload.NewGenerator(5, onto)
	script := gen.Session(4, 4, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		store := corpus.NewStore()
		faq := qa.NewFAQ()
		sup, err := core.New(core.Config{Corpus: store, FAQ: faq})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, msg := range script {
			if _, err := sup.Process(msg.Room, msg.User, msg.Sample.Text); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE6ChatEndToEnd measures the supervised chat room over real
// TCP loopback (experiment E6), one full room-session per iteration.
func BenchmarkE6ChatEndToEnd(b *testing.B) {
	for _, mode := range []eval.E6Mode{eval.E6Off, eval.E6Inline, eval.E6Async} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := eval.RunE6(eval.E6Config{
					Rooms: 1, ClientsPerRoom: 4, MessagesEach: 8,
					Mode: mode, Seed: 6,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Throughput, "msg/s")
				b.ReportMetric(float64(res.P95.Microseconds()), "p95-µs")
			}
		})
	}
}

// BenchmarkE7Ablation measures both §4.3 methodologies side by side
// (experiment E7).
func BenchmarkE7Ablation(b *testing.B) {
	onto := ontology.BuildCourseOntology()
	gen := workload.NewGenerator(7, onto)
	samples := make([]string, 256)
	for i := range samples {
		if i%2 == 0 {
			samples[i] = gen.Correct().Text
		} else {
			samples[i] = gen.SemanticError().Text
		}
	}
	checkers := []struct {
		name    string
		checker semantic.Checker
	}{
		{"ontology-distance", semantic.New(onto, 0)},
		{"semantic-link-grammar", semantic.NewSLGChecker(onto)},
	}
	for _, c := range checkers {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.checker.AnalyzeText(samples[i%len(samples)])
			}
		})
	}
}

// BenchmarkE8CorpusSuggestions measures corpus suggestion retrieval at
// several corpus sizes (experiment E8).
func BenchmarkE8CorpusSuggestions(b *testing.B) {
	onto := ontology.BuildCourseOntology()
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("corpus-%d", size), func(b *testing.B) {
			gen := workload.NewGenerator(8, onto)
			store := corpus.NewStore()
			for i := 0; i < size; i++ {
				s := gen.Correct()
				store.Add(corpus.Record{
					Text:    s.Text,
					Tokens:  linkgrammar.Tokenize(s.Text),
					Verdict: corpus.VerdictCorrect,
					Topics:  s.Topics,
				})
			}
			queries := make([][]string, 64)
			for i := range queries {
				queries[i] = linkgrammar.Tokenize(gen.SyntaxError().Text)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.Suggest(queries[i%len(queries)], nil, 3)
			}
		})
	}
}

// BenchmarkE9ShardedSupervision measures concurrent classroom
// throughput (experiment E9): the same room-interleaved message stream
// through the single-threaded Process loop and through the room-sharded
// pipeline, each with the parse cache off and on. The acceptance bar is
// sharded ≥ 2× serial on ≥ 4 rooms.
//
// The workload is shared with eval.RunE9 (eval.E9Workload); the arm
// execution deliberately is not: RunE9 measures one cold pass per
// fresh Supervisor, while this benchmark reuses one Supervisor across
// b.N iterations so the cached arms report steady-state hit rates.
func BenchmarkE9ShardedSupervision(b *testing.B) {
	msgs := eval.E9Workload(eval.E9Config{Rooms: 8, MessagesPerRoom: 32, Seed: 90})

	for _, arm := range []struct {
		name            string
		sharded, cached bool
	}{
		{"serial-uncached", false, false},
		{"serial-cached", false, true},
		{"sharded-uncached", true, false},
		{"sharded-cached", true, true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			popts := linkgrammar.Options{CacheSize: -1}
			if arm.cached {
				popts = linkgrammar.Options{} // core default: cache on
			}
			sup, err := core.New(core.Config{ParserOptions: popts})
			if err != nil {
				b.Fatal(err)
			}
			errCh := make(chan error, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if arm.sharded {
					pipe := pipeline.New(pipeline.Config{Block: true})
					for _, m := range msgs {
						m := m
						if err := pipe.Submit(m.Room, func() {
							if _, perr := sup.Process(m.Room, m.User, m.Text); perr != nil {
								select {
								case errCh <- perr:
								default:
								}
							}
						}); err != nil {
							b.Fatal(err)
						}
					}
					pipe.Close()
					select {
					case perr := <-errCh:
						b.Fatal(perr)
					default:
					}
				} else {
					for _, m := range msgs {
						if _, err := sup.Process(m.Room, m.User, m.Text); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(msgs)*b.N)/b.Elapsed().Seconds(), "msg/s")
		})
	}
}

// BenchmarkE15WireToVerdict measures the full wire-to-verdict path
// (experiment E15): real TCP loopback, async batched supervision, one
// sub-benchmark per wire framing (DESIGN.md D13). Senders are
// pipelined and the timer stops only after every sender's own echo
// returned and the server quiesced, so msg/s is supervised throughput
// and -benchmem's allocs/op is the process-wide heap cost per chat
// message, both ends of the wire included. The worker-count sweep
// lives in `evalharness -exp E15`; this fixed-shape variant feeds the
// benchgate allocation budget.
func BenchmarkE15WireToVerdict(b *testing.B) {
	for _, tc := range []struct {
		name string
		wire chat.Wire
	}{
		{"text", chat.WireText},
		{"binary", chat.WireBinary},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sup, err := core.New(core.Config{})
			if err != nil {
				b.Fatal(err)
			}
			server := chat.NewServer(chat.ServerOptions{
				Supervisor:     sup.ChatSupervisor(),
				Async:          true,
				Workers:        4,
				BatchSupervise: true,
				// Deep client queues: pipelined senders outrun their own
				// read loops in bursts, and a dropped client would hang
				// the echo wait.
				SendQueue: 4096,
			})
			addr, err := server.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer server.Close()

			gen := workload.NewGenerator(150, sup.Ontology())
			lines := make([]string, 256)
			for i, s := range gen.Generate(len(lines), workload.DefaultMix()) {
				lines[i] = s.Text
			}

			const rooms, perRoom = 4, 2
			type bclient struct {
				cl   *chat.Client
				user string
			}
			var clients []bclient
			var echoWG, rwg sync.WaitGroup
			for r := 0; r < rooms; r++ {
				for c := 0; c < perRoom; c++ {
					user := fmt.Sprintf("user-%d-%d", r, c)
					cl, err := chat.DialWire(addr.String(),
						fmt.Sprintf("room-%d", r), user, tc.wire, 5*time.Second)
					if err != nil {
						b.Fatal(err)
					}
					clients = append(clients, bclient{cl: cl, user: user})
					rwg.Add(1)
					go func(cl *chat.Client, user string) {
						defer rwg.Done()
						for m := range cl.Receive() {
							if m.Type == chat.TypeChat && m.From == user {
								echoWG.Done()
							}
						}
					}(cl, user)
				}
			}
			defer rwg.Wait()
			defer func() {
				for _, c := range clients {
					_ = c.cl.Close()
				}
			}()

			counts := make([]int, len(clients))
			for i := 0; i < b.N; i++ {
				counts[i%len(clients)]++
			}
			echoWG.Add(b.N)
			errCh := make(chan error, len(clients))
			b.ResetTimer()
			var swg sync.WaitGroup
			for i, c := range clients {
				swg.Add(1)
				go func(c bclient, n, off int) {
					defer swg.Done()
					for k := 0; k < n; k++ {
						if err := c.cl.Say(lines[(off+k)%len(lines)]); err != nil {
							errCh <- err
							return
						}
					}
				}(c, counts[i], i*31)
			}
			swg.Wait()
			select {
			case err := <-errCh:
				b.Fatal(err)
			default:
			}
			echoed := make(chan struct{})
			go func() { echoWG.Wait(); close(echoed) }()
			select {
			case <-echoed:
			case <-time.After(120 * time.Second):
				b.Fatal("echo timeout")
			}
			if !server.Quiesce(60 * time.Second) {
				b.Fatal("server did not quiesce")
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msg/s")
		})
	}
}

// BenchmarkE11JournaledSupervision measures the write-ahead journal's
// cost on the E9 sharded-cached supervision path (experiment E11):
// journal off, batched group commit, and fsync-per-record. The
// acceptance bar is group commit within 15% of the no-journal arm; the
// fsync-per-record arm is reported for comparison (it pays one disk
// flush per learned fact).
func BenchmarkE11JournaledSupervision(b *testing.B) {
	msgs := eval.E9Workload(eval.E9Config{Rooms: 8, MessagesPerRoom: 32, Seed: 110})

	for _, arm := range []struct {
		name      string
		journaled bool
		syncEvery bool
	}{
		{"no-journal", false, false},
		{"group-commit", true, false},
		{"fsync-per-record", true, true},
	} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := core.Config{}
			var mgr *journal.Manager
			if arm.journaled {
				dir := b.TempDir()
				stores, err := journal.LoadStores(dir)
				if err != nil {
					b.Fatal(err)
				}
				mgr, err = journal.Open(dir, stores, journal.Options{SyncEveryRecord: arm.syncEvery})
				if err != nil {
					b.Fatal(err)
				}
				defer func() {
					if err := mgr.Close(); err != nil {
						b.Fatal(err)
					}
				}()
				cfg.Ontology = stores.Ontology
				cfg.Corpus = stores.Corpus
				cfg.Profiles = stores.Profiles
				cfg.FAQ = stores.FAQ
			}
			sup, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			errCh := make(chan error, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pipe := pipeline.New(pipeline.Config{Block: true})
				for _, m := range msgs {
					m := m
					if err := pipe.Submit(m.Room, func() {
						if _, perr := sup.Process(m.Room, m.User, m.Text); perr != nil {
							select {
							case errCh <- perr:
							default:
							}
						}
					}); err != nil {
						b.Fatal(err)
					}
				}
				pipe.Close()
				select {
				case perr := <-errCh:
					b.Fatal(perr)
				default:
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(len(msgs)*b.N)/b.Elapsed().Seconds(), "msg/s")
			if mgr != nil {
				st := mgr.Stats()
				b.ReportMetric(float64(st.Fsyncs)/float64(b.N), "fsyncs/op")
			}
		})
	}
}

// BenchmarkE12OverloadShedding measures the admission-controlled chat
// server under 5× open-loop overload (experiment E12): real TCP
// connections, oldest-drop shedding, supervision goodput as msg/s. The
// acceptance bar is bounded p99 end-to-end latency (no growth with the
// backlog) while supervised goodput holds near measured capacity; the
// full three-multiplier sweep with the blocking contrast arm lives in
// `evalharness -exp E12`.
func BenchmarkE12OverloadShedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunE12(eval.E12Config{
			Rooms: 2, ClientsPerRoom: 2,
			Duration:            400 * time.Millisecond,
			Seed:                120,
			Multipliers:         []float64{5},
			SkipBlocking:        true,
			CalibrationMessages: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		arm := res.Arms[0]
		b.ReportMetric(arm.SupervisedRate, "msg/s")
		b.ReportMetric(arm.ShedFraction*100, "shed-%")
		b.ReportMetric(float64(arm.P99.Microseconds()), "p99-µs")
	}
}

// BenchmarkE16ClusterFailover measures the cluster failover path
// (experiment E16): the three-arm drill — a golden single-node session
// against the same session on the room-partitioned fabric, with and
// without a mid-session owner kill — plus a small node-kill/partition
// sweep audited against the failover invariant. The reported metrics
// are the reconnect-window size and the promotion's WAL replay, the
// costs a node death actually imposes on a live classroom.
func BenchmarkE16ClusterFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunE16(eval.E16Config{Seed: 160, Rooms: 4, RoomsPerWave: 1, Nodes: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.WindowDeliveries), "window-msgs")
		b.ReportMetric(float64(res.Promotion.ReplayApplied), "replayed-recs")
		b.ReportMetric(float64(res.Failovers+1), "failovers")
	}
}

// BenchmarkE10SnapshotReadPath measures the knowledge-layer read path
// (experiment E10): the legacy locked ontology (RWMutex + map-allocating
// Dijkstra per query) against the immutable compiled snapshot
// (lock-free, table-lookup Related) at 1, 4 and 16 workers. The
// acceptance bar is snapshot ≥ locked at every width and strictly
// faster at 16 workers; run with -benchmem to see the snapshot arm's
// zero allocations per query.
func BenchmarkE10SnapshotReadPath(b *testing.B) {
	onto := ontology.BuildCourseOntology()
	items := onto.Items()
	var pairs [][2]string
	for i, a := range items {
		for _, c := range items[i+1:] {
			pairs = append(pairs, [2]string{a.Name, c.Name})
		}
	}
	snap := onto.Snapshot()
	locked := onto.LockedReadPath()

	arms := []struct {
		name  string
		query func(a, bn string)
	}{
		{"locked", func(a, bn string) { locked.Related(a, bn, 0) }},
		{"snapshot", func(a, bn string) { snap.Related(a, bn, 0) }},
	}
	for _, workers := range []int{1, 4, 16} {
		for _, arm := range arms {
			b.Run(fmt.Sprintf("%s-%dw", arm.name, workers), func(b *testing.B) {
				var wg sync.WaitGroup
				per := b.N/workers + 1
				b.ResetTimer()
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							p := pairs[(w+i)%len(pairs)]
							arm.query(p[0], p[1])
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}

// ---- micro-benchmarks ---------------------------------------------------

// BenchmarkParserBySentenceLength isolates the O(n³) parser cost curve.
func BenchmarkParserBySentenceLength(b *testing.B) {
	parser, err := linkgrammar.NewEnglishParser()
	if err != nil {
		b.Fatal(err)
	}
	cases := map[string]string{
		"len05": "the cat chased a mouse",
		"len08": "the student understands the lesson about the stack",
		"len11": "the teacher explains the lesson about the tree in the classroom",
		"len14": "i want to learn the algorithm about the binary search tree in the course",
	}
	for name, sentenceText := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := parser.Parse(sentenceText); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOntologyDistance isolates the semantic-distance query.
func BenchmarkOntologyDistance(b *testing.B) {
	onto := ontology.BuildCourseOntology()
	pairs := [][2]string{
		{"stack", "pop"}, {"tree", "pop"}, {"binary search tree", "insert"},
		{"hash table", "enqueue"}, {"vertex", "heapify"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		onto.Distance(p[0], p[1])
	}
}

// BenchmarkSupervisorProcess measures the whole Figure-3 pipeline per
// message with recording enabled (the production configuration).
func BenchmarkSupervisorProcess(b *testing.B) {
	sup, err := core.New(core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(9, sup.Ontology())
	samples := gen.Generate(512, workload.DefaultMix())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := samples[i%len(samples)]
		if _, err := sup.Process("bench", "user", s.Text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPruningAblation isolates the pre-parse disjunct pruning
// pass: the same sentences parsed with and without power pruning.
func BenchmarkPruningAblation(b *testing.B) {
	dict, err := linkgrammar.NewEnglishDictionary()
	if err != nil {
		b.Fatal(err)
	}
	// Long sentences: the pass is length-gated because short chat
	// lines parse faster without it.
	sentences := []string{
		"the teacher explains the lesson about the binary search tree in the classroom today",
		"i want to learn the algorithm about the hash table in the course with the students",
		"the students discuss the homework about the priority queue with the teacher in the room",
	}
	for _, tc := range []struct {
		name string
		opts linkgrammar.Options
	}{
		{"pruned", linkgrammar.Options{MaxNulls: 2}},
		{"unpruned", linkgrammar.Options{MaxNulls: 2, DisablePruning: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			parser := linkgrammar.NewParser(dict, tc.opts)
			for i := 0; i < b.N; i++ {
				if _, err := parser.Parse(sentences[i%len(sentences)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE17AdversarialFailover measures the adversarial chaos path
// (experiment E17): one population carrying all four fault classes —
// a severed-and-healed ship stream, a promotion-coordinator crash with
// resume, a lagged standby killed mid-lag and clock-skewed lease
// races — replayed twice for byte-identity, plus a one-wave sweep.
// The reported metrics are the promotion resumes and race outcomes,
// the work the fabric does to survive an actively hostile schedule.
func BenchmarkE17AdversarialFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunE17(eval.E17Config{Seed: 170, Rooms: 4, RoomsPerWave: 1, Nodes: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Failed(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Failovers+res.Drill.Failovers), "failovers")
		b.ReportMetric(float64(res.Faults.Resumes+res.Drill.Faults.Resumes), "resumes")
		b.ReportMetric(float64(res.Races+res.Drill.Races), "races")
	}
}
