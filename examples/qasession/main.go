// QA session: exercise the Questions-and-Answers system and FAQ mining
// of §4.4 directly — every paper template, FAQ accumulation across
// repeated questions, the ontology-definition pipeline (DDL/DML →
// interpreter) extending the knowledge base at runtime, and the QTI
// quiz export of the accumulated FAQ (the paper's "famous
// distance-learning standards" future work).
//
//	go run ./examples/qasession
package main

import (
	"fmt"
	"log"
	"os"

	"semagent/internal/core"
	"semagent/internal/ontology"
	"semagent/internal/qti"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sup, err := core.New(core.Config{})
	if err != nil {
		return err
	}

	fmt.Println("--- the paper's own example questions (§4.4) ---")
	questions := []string{
		"What is stack?",
		"Which data structure has the method push?",
		"Does stack have pop method?",
		"What is the relation between a tree and a pop?",
		"Is a heap a binary tree?",
		"What is a zorklist?", // out of ontology: must be refused
	}
	for _, q := range questions {
		ans := sup.QA().Ask(q)
		fmt.Printf("Q: %s\n", q)
		if ans.Answered {
			fmt.Printf("A (%s, %s): %s\n\n", ans.Source, ans.Template, ans.Text)
		} else {
			fmt.Printf("A: no answer found (template %s)\n\n", ans.Template)
		}
	}

	fmt.Println("--- FAQ accumulation: repeated and rephrased questions ---")
	for i := 0; i < 3; i++ {
		sup.QA().Ask("What is a queue?")
	}
	sup.QA().Ask("what is the queue") // rephrased: same FAQ entry
	sup.QA().Ask("Does a stack have a push method?")
	fmt.Println(sup.FAQ().Render(3))

	fmt.Println("--- extending the ontology at runtime via DDL/DML ---")
	ddl := `
		CREATE ITEM "avl tree" KIND concept;
		SET DESCRIPTION "avl tree" "An AVL tree is a self-balancing binary search tree in which the heights of the two child subtrees differ by at most one.";
		RELATE "avl tree" "binary search tree" KIND isa;
		RELATE "avl tree" rotate KIND hasoperation;
	`
	in := ontology.NewInterpreter(sup.Ontology())
	if err := in.Run(ddl); err != nil {
		return err
	}
	if err := core.TeachOntologyTerms(sup.Parser().Dictionary(), sup.Ontology()); err != nil {
		return err
	}
	ans := sup.QA().Ask("What is an avl tree?")
	fmt.Printf("Q: What is an avl tree?\nA: %s\n", ans.Text)
	ans = sup.QA().Ask("Does an avl tree have a rotate method?")
	fmt.Printf("Q: Does an avl tree have a rotate method?\nA: %s\n", ans.Text)

	fmt.Println()
	fmt.Println("--- QTI export of the session's FAQ (first lines) ---")
	doc := qti.FromFAQ(sup.FAQ(), 2)
	if err := doc.Write(os.Stdout); err != nil {
		return err
	}
	return nil
}
