// Classroom: a full end-to-end simulation over real TCP — the paper's
// deployment scenario. A supervised chat server is started, scripted
// students join rooms and hold a course discussion, and the session
// ends with the statistic analyzer's report plus per-student teaching
// material recommendations.
//
//	go run ./examples/classroom
//	go run ./examples/classroom -students 6 -messages 120
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"semagent/internal/chat"
	"semagent/internal/core"
	"semagent/internal/recommend"
	"semagent/internal/workload"
)

func main() {
	var (
		students = flag.Int("students", 4, "students per room")
		rooms    = flag.Int("rooms", 2, "number of rooms")
		messages = flag.Int("messages", 60, "total scripted messages")
		seed     = flag.Int64("seed", 2026, "dialogue seed")
	)
	flag.Parse()
	if err := run(*rooms, *students, *messages, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(rooms, students, messages int, seed int64) error {
	sup, err := core.New(core.Config{})
	if err != nil {
		return err
	}
	server := chat.NewServer(chat.ServerOptions{Supervisor: sup.ChatSupervisor()})
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer server.Close()
	fmt.Printf("classroom server on %s (%d rooms × %d students)\n\n", addr, rooms, students)

	// Connect the scripted students.
	type student struct {
		client *chat.Client
		agentN int
	}
	clients := make(map[string]*student)
	gen := workload.NewGenerator(seed, sup.Ontology())
	script := gen.Session(rooms, students, messages)
	for _, msg := range script {
		if _, ok := clients[msg.User]; ok {
			continue
		}
		c, err := chat.Dial(addr.String(), msg.Room, msg.User, 5*time.Second)
		if err != nil {
			return fmt.Errorf("%s join: %w", msg.User, err)
		}
		defer c.Close()
		clients[msg.User] = &student{client: c}
	}

	// Play the script; print the interesting exchanges.
	shown := 0
	for _, msg := range script {
		st := clients[msg.User]
		if err := st.client.Say(msg.Sample.Text); err != nil {
			return err
		}
		// Drain the student's inbox briefly, looking for agent feedback.
		timeout := time.After(300 * time.Millisecond)
	drain:
		for {
			select {
			case m, ok := <-st.client.Receive():
				if !ok {
					break drain
				}
				if m.Type == chat.TypeAgent && shown < 12 {
					fmt.Printf("[%s] %s\n", msg.User, msg.Sample.Text)
					fmt.Printf("    %s> %s\n", m.Agent, m.Text)
					shown++
					break drain
				}
				if m.Type == chat.TypeChat && m.From == msg.User {
					// Own echo seen and no agent response expected for
					// correct sentences: move on quickly.
					if msg.Sample.Kind == workload.KindCorrect {
						break drain
					}
				}
			case <-timeout:
				break drain
			}
		}
	}

	fmt.Println()
	fmt.Println(sup.Analyzer().Report())
	fmt.Println(sup.FAQ().Render(3))

	// Per-student recommendations from their profiles.
	rec := recommend.New(recommend.CourseLibrary())
	for _, p := range sup.Profiles().Snapshot() {
		recs := rec.ForUser(p, 2)
		if len(recs) == 0 {
			continue
		}
		fmt.Printf("%s (%d msgs, %.0f%% error rate):\n", p.User, p.Messages, p.ErrorRate()*100)
		fmt.Print("  " + recommend.Render(recs))
	}
	return nil
}
