// Moderation: a deep dive into the Learning_Angel Agent of Figure 4 —
// fault-tolerant parsing, error localisation, error-kind tagging,
// "did you mean" repairs and learner-corpus suggestions, with the
// link-grammar diagrams printed for inspection.
//
//	go run ./examples/moderation
package main

import (
	"fmt"
	"log"

	"semagent/internal/angel"
	"semagent/internal/core"
	"semagent/internal/corpus"
	"semagent/internal/linkgrammar"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sup, err := core.New(core.Config{})
	if err != nil {
		return err
	}

	// Warm the learner corpus so suggestions can fire.
	for _, text := range []string{
		"The stack has a push operation.",
		"A queue is a fifo structure.",
		"I push the data into the stack.",
		"The tree has many nodes.",
	} {
		sup.Corpus().Add(corpus.Record{
			Text:    text,
			Tokens:  linkgrammar.Tokenize(text),
			Verdict: corpus.VerdictCorrect,
		})
	}

	fmt.Println("--- a correct sentence and its linkage (paper Fig. 2) ---")
	res, err := sup.Parser().Parse("The cat chased a mouse.")
	if err != nil {
		return err
	}
	fmt.Println(res.Best())
	fmt.Println()

	fmt.Println("--- broken sentences through the Learning_Angel ---")
	broken := []string{
		"The stack have a push operation.", // agreement
		"The the cat chased a mouse.",      // duplicated determiner
		"Cat the chased a mouse.",          // word order
		"The blorf has a push operation.",  // unknown word
	}
	for _, text := range broken {
		rep, err := sup.Angel().Check(text)
		if err != nil {
			return err
		}
		fmt.Printf("learner: %s\n", text)
		if rep.OK {
			fmt.Println("  (accepted)")
			continue
		}
		fmt.Printf("  error tags: %v\n", rep.Tags)
		if len(rep.NullTokens) > 0 {
			words := make([]string, 0, len(rep.NullTokens))
			for _, i := range rep.NullTokens {
				words = append(words, rep.Tokens[i])
			}
			fmt.Printf("  skipped words: %v\n", words)
		}
		if rep.Repaired != "" {
			fmt.Printf("  did you mean: %q\n", rep.Repaired)
		}
		for _, s := range rep.Suggestions {
			fmt.Printf("  similar correct sentence (score %.2f): %s\n", s.Score, s.Record.Text)
		}
		if rep.Linkage != nil {
			fmt.Println("  best fault-tolerant linkage:")
			fmt.Println(indent(rep.Linkage.String(), "    "))
		}
		fmt.Println()
	}

	// Show the tag taxonomy.
	fmt.Printf("error tag taxonomy: %v\n", []string{
		angel.TagAgreement, angel.TagDeterminer, angel.TagWordOrder,
		angel.TagExtraWord, angel.TagUnknownWord, angel.TagUnparseable,
	})
	return nil
}

func indent(s, prefix string) string {
	out := prefix
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += prefix
		}
	}
	return out
}
