// Quickstart: build the paper's supervisor and run a handful of
// classroom messages through it, printing what each agent decided.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"semagent/internal/core"
)

func main() {
	sup, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	messages := []struct{ user, text string }{
		{"alice", "Hello everyone, I am ready."},
		{"alice", "A stack is a lifo structure."},
		{"bob", "The stack have a push operation."},      // grammar slip
		{"bob", "I push the data into a tree."},          // semantic slip (paper §4.3)
		{"carol", "The tree doesn't have a pop method."}, // correct BECAUSE negated
		{"carol", "What is a stack?"},                    // QA template (paper §4.4)
		{"dave", "Does a tree have a pop method?"},       // QA yes/no
	}

	for _, m := range messages {
		a, err := sup.Process("ds-course", m.user, m.text)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] %s\n", m.user, m.text)
		fmt.Printf("    pattern=%s verdict=%s\n", a.Classification.Pattern, a.Verdict)
		for _, r := range a.Responses {
			fmt.Printf("    %s> %s\n", r.Agent, r.Text)
		}
	}

	fmt.Println()
	fmt.Println(sup.Analyzer().Report())
	fmt.Println(sup.FAQ().Render(3))
}
