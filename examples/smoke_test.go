// Package examples holds the runnable demo programs, one per
// subdirectory. This test-only file keeps them honest: every example
// must build and run to a clean exit, so the demos cannot rot silently
// as the library underneath them evolves.
package examples

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// exampleArgs trims the long-running examples down to smoke size.
var exampleArgs = map[string][]string{
	"classroom": {"-messages", "12", "-students", "2", "-rooms", "1"},
}

// TestExamplesBuildAndRun builds each examples/<name> program into a
// scratch dir and runs it as a subprocess with a hard deadline. A
// non-zero exit, a hang, or output on a crash fails the suite.
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke tests skipped in -short mode")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	repoRoot, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	binDir := t.TempDir()
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if _, err := os.Stat(filepath.Join(name, "main.go")); err != nil {
			continue // not an example program
		}
		ran++
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Dir = repoRoot
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			run := exec.CommandContext(ctx, bin, exampleArgs[name]...)
			out, err := run.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s timed out\noutput:\n%s", name, out)
			}
			if err != nil {
				t.Fatalf("example %s exited with %v\noutput:\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example programs found")
	}
}
